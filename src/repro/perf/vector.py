"""Structure-of-arrays batch kernels: whole batches of fixed points per sweep.

The scalar kernels of :mod:`repro.perf.kernels` solve one fixed-point
recursion at a time — a Python-level loop per stream per instance per
offset.  The recurrences are embarrassingly regular (same map shape, all
ints), so this module advances *thousands of them simultaneously*: one
"lane" per pending recursion, one instruction stream per sweep over the
whole batch.

SoA layout
==========

:func:`pack_networks` flattens a sequence of networks into contiguous
integer arrays with CSR-style offset tables (the **structure-of-arrays**
representation)::

    indices[p]                original position of packed network p
    tc[p]                     token-cycle time of packed network p
    net_master_start[p..p+1]  master-id range of packed network p
    net_stream_start[p..p+1]  stream-id range of packed network p
    master_net[m]             packed network owning master m
    master_tc[m]              its tc (denormalised: kernels never hop)
    master_stream_start[m..m+1]  stream range of master m
    stream_T / stream_D / stream_J   per high-priority stream, in
                              declaration order within each master

Every value passes through :func:`_pack_value` on the way in (the
identity — it exists as the seam the ``vec-int32-truncation`` corpus
mutant narrows).  Networks the arrays cannot represent exactly — a
non-int ``Tcycle``, non-int stream attributes, or magnitudes beyond
``_PACK_LIMIT`` where an int64 backend could overflow — are listed in
``fallback`` and take the scalar path unchanged.

Lane engine
===========

All three policies reduce to one engine: iterate
``x ← base + Σ_j k(x)·C_j`` per lane, where ``k`` is the ceiling map
(busy periods), the strict ``⌊·⌋+1`` map (DM instances), or the capped
strict map (EDF offsets), with the exact exit order of the scalar
kernels (``total == x`` first, then ``total > limit``).  Lanes start
from the **generic seed** (one application of the map to 0; the busy
seed is ``blocking + ΣC``) and climb monotonically from below, so a
lane converges iff its least fixed point is within the limit — the same
verdict and the same converged value as both the generic path and the
seed-jumped fast kernels, bit for bit.  Only iteration counts differ
(reported in :data:`repro.perf.stats.counters`, never part of a
verdict).

**Convergence masking**: after every sweep, lanes whose exit condition
fired are retired and the arrays compacted, so ragged batches do not
pay for their slowest lane.  Retirement changes no surviving lane's
trajectory — each lane's sweep sequence is exactly the scalar
iteration it replaces (property-tested against per-lane reference
loops in ``tests/test_perf_vector.py``).

Backends
========

The numpy backend engages when numpy is importable and
``REPRO_DISABLE_NUMPY`` is unset.  Under it the *whole* pipeline is
array-shaped, not just the iteration: priority ranks come from one
``lexsort`` over the flat arrays, blocking terms / seed sums / candidate
EDF offsets are built by ``repeat``/``arange`` segment expansion, the
float utilisation guards are evaluated as interval checks (masters whose
guard lands within the float-reordering margin re-run through the scalar
kernels, so the bit-exact declaration-order summation still decides
them), and the per-network verdict fold is ``reduceat`` over the
network CSR.  Otherwise a pure-python backend runs the same lanes over
the same flat arrays with identical semantics (plain ints, so no
overflow concerns).  The numpy engine guards against int64 overflow
with exact python-int bound prechecks plus a per-sweep bound, and falls
back to the scalar kernels for the whole policy pass if anything could
wrap (``_VectorRangeError`` — freak magnitudes only; correctness never
depends on the backend).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.timeops import DivergedError
from . import kernels
from .stats import counters as _counters

MAX_ITER = kernels.MAX_ITER

#: Magnitude bound for packing: int64 lanes stay provably wrap-free for
#: values below this (the overflow prechecks cover derived quantities).
_PACK_LIMIT = 1 << 44

#: int64-safety ceiling for the overflow prechecks (exact python
#: arithmetic on array maxima).
_SAFE_TOTAL = 1 << 62

#: Materialisation cap on any one lane/entry expansion — beyond this the
#: pass falls back to the scalar kernels rather than allocate without
#: bound (the scalar path enumerates the same work lazily).
_MAX_LANES = 4_000_000


def _pack_value(v: int) -> int:
    """Identity hook every value crosses when entering the SoA arrays.

    This is the dtype-narrowing seam: the ``vec-int32-truncation``
    corpus mutant replaces it with an int32 wraparound, and the corpus
    entry with >2³¹ magnitudes must kill that.
    """
    return v


#: The pristine seam — ``pack_networks`` skips the per-value call when
#: the module attribute still is this exact function (a mutant that
#: rebinds ``_pack_value`` fails the identity check and flows through).
_PACK_IDENTITY = _pack_value


# ------------------------------------------------------------------ backend

_numpy: Any = None
_numpy_checked = False
_backend_override: Optional[str] = None


def _load_numpy():
    # The availability probe is impure in the letter (env read + global
    # memo) but constant per process, and the cross-mode oracles prove
    # backend choice never changes analysis values.
    global _numpy, _numpy_checked
    if not _numpy_checked:
        _numpy_checked = True  # lint: disable=REP011 — idempotent memo
        # lint: disable=REP011 — availability switch, not analysis input
        if not os.environ.get("REPRO_DISABLE_NUMPY"):
            try:
                import numpy  # noqa: F401

                _numpy = numpy  # lint: disable=REP011 — idempotent memo
            except ImportError:
                _numpy = None  # lint: disable=REP011 — idempotent memo
    return _numpy


def numpy_available() -> bool:
    """Is the numpy backend active (importable and not disabled)?"""
    return backend_name() == "numpy"


def numpy_version() -> Optional[str]:
    """The numpy version string the vector engine would use, else None."""
    np = _load_numpy()
    return None if np is None else np.__version__


def backend_name() -> str:
    """``"numpy"`` or ``"python"`` — the engine that would run now."""
    if _backend_override is not None:
        return _backend_override
    return "python" if _load_numpy() is None else "numpy"


@contextmanager
def backend_forced(name: str):
    """Force a backend for a block (tests compare both on one machine)."""
    if name not in ("numpy", "python"):
        raise ValueError(f"unknown vector backend {name!r}")
    if name == "numpy" and _load_numpy() is None:
        raise RuntimeError("numpy backend unavailable")
    global _backend_override
    previous = _backend_override
    _backend_override = name
    try:
        yield
    finally:
        _backend_override = previous


class _VectorRangeError(Exception):
    """Internal: an int64 pass could overflow or over-allocate; redo it
    through the scalar kernels."""


# ------------------------------------------------------------------ packing


class NetworkPack:
    """The SoA representation of a batch of networks (see module doc)."""

    __slots__ = (
        "networks", "indices", "fallback", "tc",
        "net_master_start", "net_stream_start", "master_net", "master_tc",
        "master_stream_start", "stream_T", "stream_D", "stream_J",
        "_specs", "_npc", "_flat", "_pm",
    )

    def __init__(self) -> None:
        self.networks: Tuple[Any, ...] = ()
        self.indices: List[int] = []
        self.fallback: Tuple[int, ...] = ()
        self.tc: List[int] = []
        self.net_master_start: List[int] = [0]
        self.net_stream_start: List[int] = [0]
        self.master_net: List[int] = []
        self.master_tc: List[int] = []
        self.master_stream_start: List[int] = [0]
        self.stream_T: List[int] = []
        self.stream_D: List[int] = []
        self.stream_J: List[int] = []
        self._specs: Dict[int, Tuple] = {}
        self._npc: Optional[Dict[str, Any]] = None
        self._flat: Dict[str, Any] = {}
        self._pm: Dict[str, List[List]] = {}

    @property
    def n_packed(self) -> int:
        return len(self.indices)

    @property
    def n_masters(self) -> int:
        return len(self.master_net)

    def masters_of(self, p: int) -> range:
        return range(self.net_master_start[p], self.net_master_start[p + 1])

    def master_specs(self, m: int) -> Tuple[Tuple[int, int, int], ...]:
        """``(T, D, J)`` per stream of master ``m`` — the scalar-kernel
        input shape, read back out of the flat arrays (memoized)."""
        specs = self._specs.get(m)
        if specs is None:
            lo = self.master_stream_start[m]
            hi = self.master_stream_start[m + 1]
            specs = self._specs[m] = tuple(
                (self.stream_T[s], self.stream_D[s], self.stream_J[s])
                for s in range(lo, hi)
            )
        return specs

    def network_view(self, p: int) -> Tuple[int, Tuple[Tuple, ...]]:
        """``(tc, per-master spec tuples)`` for packed network ``p`` —
        must round-trip the object model exactly (property-tested)."""
        return (
            self.tc[p],
            tuple(self.master_specs(m) for m in self.masters_of(p)),
        )

    def np_arrays(self) -> Dict[str, Any]:
        """The int64 array mirror of the packed lists, built lazily once
        (numpy backend only)."""
        if self._npc is None:
            np = _load_numpy()
            i64 = np.int64
            mss = np.asarray(self.master_stream_start, dtype=i64)
            m_count = mss[1:] - mss[:-1]
            self._npc = {
                "aT": np.asarray(self.stream_T, dtype=i64),
                "aD": np.asarray(self.stream_D, dtype=i64),
                "aJ": np.asarray(self.stream_J, dtype=i64),
                "m_start": mss[:-1],
                "m_count": m_count,
                "m_tc": np.asarray(self.master_tc, dtype=i64),
                "str_master": np.repeat(
                    np.arange(self.n_masters, dtype=i64), m_count),
                "nss": np.asarray(self.net_stream_start, dtype=i64),
            }
        return self._npc


def pack_networks(networks: Sequence, ttr: Optional[int] = None) -> NetworkPack:
    """Flatten ``networks`` into the SoA representation.

    ``ttr`` overrides every network's own TTR when given (the golden
    probe re-analysis).  Networks whose timing or streams are not plain
    ints — or whose magnitudes exceed ``_PACK_LIMIT`` — land in
    ``pack.fallback`` for the scalar path.

    Extraction is one fused pass per master
    (:func:`repro.profibus.network.master_pack_columns`): the flat spec
    columns and the eq. (13) ``C_M^k`` term come out of a single walk
    of the stream list, and ``Tcycle = TTR + Tdel`` (eq. (14)) is
    assembled right here instead of through the layered scalar helpers
    — bit-identical by the round-trip property tests and the golden
    corpus, at a fraction of the per-network constant cost that
    dominates packing.
    """
    from ..profibus.frames import TOKEN_FRAME
    from ..profibus.network import master_pack_columns

    pack = NetworkPack()
    pack.networks = tuple(networks)
    fallback: List[int] = []
    pv = _pack_value
    identity = pv is _PACK_IDENTITY
    lim = _PACK_LIMIT
    sT, sD, sJ = pack.stream_T, pack.stream_D, pack.stream_J
    m_net, m_tc, m_start = (pack.master_net, pack.master_tc,
                            pack.master_stream_start)
    token_bits = TOKEN_FRAME.bits
    last_phy = None
    tpt = 0
    for idx, net in enumerate(pack.networks):
        phy = net.phy
        if phy is not last_phy:
            tpt = token_bits + phy.tid2  # token_pass_time(phy)
            last_phy = phy
        # Single pass with rollback: columns go straight into the flat
        # arrays; an unpackable master truncates back to the marks.
        mark_s = len(sT)
        mark_m = len(m_net)
        p = len(pack.indices)
        tdel = 0
        ok = True
        for master in net.masters:
            cols = master_pack_columns(master, phy)
            if cols is None or cols[3] > lim:
                ok = False
                break
            ts, ds, js, _mx, cm = cols
            tdel += cm
            m_net.append(p)
            if ts:
                if identity:
                    sT.extend(ts)
                    sD.extend(ds)
                    sJ.extend(js)
                else:
                    sT.extend(map(pv, ts))
                    sD.extend(map(pv, ds))
                    sJ.extend(map(pv, js))
            m_start.append(len(sT))
        if ok:
            t = ttr if ttr is not None else net.require_ttr()
            if t < net.n_masters * tpt:
                raise ValueError(
                    f"TTR={t} is below the no-load ring latency "
                    f"{net.ring_latency()}; the Tcycle bound does not apply"
                )
            tc = t + tdel  # eq. (14): Tcycle = TTR + Tdel
            ok = type(tc) is int and tc <= lim
        if not ok:
            del sT[mark_s:], sD[mark_s:], sJ[mark_s:]
            del m_net[mark_m:], m_start[mark_m + 1:]
            fallback.append(idx)
            continue
        pack.indices.append(idx)
        tc_packed = tc if identity else pv(tc)
        pack.tc.append(tc_packed)
        m_tc.extend([tc_packed] * (len(m_net) - mark_m))
        pack.net_master_start.append(len(m_net))
        pack.net_stream_start.append(len(sT))
    pack.fallback = tuple(fallback)
    return pack


# --------------------------------------------------------------- lane engine
#
# One call solves a batch of independent recursions
#   x ← base + Σ_j k(x)·C_j        (entries grouped per lane, in order)
# with k per `kind`:
#   "ceil":   ⌈(x+J)/T⌉                       (busy periods, no limit)
#   "strict": ⌊(x+J)/T⌋ + 1                   (DM instances)
#   "capped": min(⌊(x+J)/T⌋ + 1, cap)         (EDF offsets)
# Exit order per lane, identical to the scalar kernels:
#   total == x            → retire, converged, value = total
#   total >  limit        → retire, not converged, value = total
# Returns (values, converged, iterations); iterations counts one unit
# per lane per sweep it was still active — the scalar `it` per lane.


def _run_lanes(kind: str,
               base: List[int], x0: List[int], limit: Optional[List[int]],
               counts: List[int],
               eC: List[int], eT: List[int], eJ: List[int],
               eCap: Optional[List[int]]):
    """List-interface engine dispatch (python backend + tests)."""
    if not base:
        return [], [], 0
    if backend_name() == "numpy":
        np = _load_numpy()
        i64 = np.int64
        vals, conv, iters = _lanes_np(
            kind,
            np.asarray(base, dtype=i64), np.asarray(x0, dtype=i64),
            None if limit is None else np.asarray(limit, dtype=i64),
            np.asarray(counts, dtype=i64),
            np.asarray(eC, dtype=i64), np.asarray(eT, dtype=i64),
            np.asarray(eJ, dtype=i64),
            None if eCap is None else np.asarray(eCap, dtype=i64),
        )
        out = vals.tolist(), conv.tolist(), iters
    else:
        out = _run_lanes_python(kind, base, x0, limit, counts, eC, eT, eJ,
                                eCap)
    _counters.vectorized += out[2]
    return out


def _run_lanes_python(kind, base, x0, limit, counts, eC, eT, eJ, eCap):
    strict = kind != "ceil"
    capped = kind == "capped"
    n = len(base)
    values = [0] * n
    converged = [False] * n
    iters = 0
    pos = 0
    for lane in range(n):
        cnt = counts[lane]
        lo, hi = pos, pos + cnt
        pos = hi
        b = base[lane]
        lim = None if limit is None else limit[lane]
        x = x0[lane]
        for it in range(1, MAX_ITER + 1):
            total = b
            if capped:
                for e in range(lo, hi):
                    k = (x + eJ[e]) // eT[e] + 1
                    cap = eCap[e]
                    total += (k if k < cap else cap) * eC[e]
            elif strict:
                for e in range(lo, hi):
                    total += ((x + eJ[e]) // eT[e] + 1) * eC[e]
            else:
                for e in range(lo, hi):
                    total += -((-x - eJ[e]) // eT[e]) * eC[e]
            if total == x:
                values[lane] = total
                converged[lane] = True
                break
            if lim is not None and total > lim:
                values[lane] = total
                break
            x = total
        else:
            raise DivergedError(
                f"fixed-point iteration did not settle after {MAX_ITER}"
                " iterations",
                x,
            )
        iters += it
    return values, converged, iters


def _lanes_np(kind, base_a, x, limit_a, counts_a, eC_a, eT_a, eJ_a, eCap_a):
    """Array-interface numpy engine: int64 arrays in, int64/bool arrays
    out.  Does NOT touch the iteration counters — callers add the
    returned count (the list wrapper and the array pipelines both do)."""
    np = _load_numpy()
    strict = kind != "ceil"
    capped = kind == "capped"
    n = len(base_a)
    i64 = np.int64
    values = np.zeros(n, dtype=i64)
    converged = np.zeros(n, dtype=bool)
    ids = np.arange(n)
    iters = 0
    # Exact-int bound data for the per-sweep overflow guard.
    cmax = int(eC_a.max(initial=0))
    emax = int(counts_a.max(initial=0))
    base_max = int(base_a.max(initial=0))

    ends = np.cumsum(counts_a)
    starts = ends - counts_a
    for _sweep in range(1, MAX_ITER + 1):
        active = len(ids)
        if not active:
            return values, converged, iters
        iters += active
        xg = np.repeat(x, counts_a)
        if strict:
            k = (xg + eJ_a) // eT_a + 1
            if capped:
                k = np.minimum(k, eCap_a)
        else:
            k = -((-xg - eJ_a) // eT_a)
        if len(k):
            kmax = int(k.max())
            if base_max + kmax * cmax * emax >= _SAFE_TOTAL:
                raise _VectorRangeError()
        contrib = k * eC_a
        cs = np.empty(len(contrib) + 1, dtype=i64)
        cs[0] = 0
        np.cumsum(contrib, out=cs[1:])
        tot = base_a + cs[ends] - cs[starts]
        eq = tot == x
        if limit_a is not None:
            exited = eq | (tot > limit_a)
        else:
            exited = eq
        if exited.any():
            gid = ids[exited]
            values[gid] = tot[exited]
            converged[gid] = eq[exited]
            keep = ~exited
            if not keep.any():
                return values, converged, iters
            keep_e = np.repeat(keep, counts_a)
            ids = ids[keep]
            base_a = base_a[keep]
            if limit_a is not None:
                limit_a = limit_a[keep]
            x = tot[keep]
            counts_a = counts_a[keep]
            ends = np.cumsum(counts_a)
            starts = ends - counts_a
            eC_a = eC_a[keep_e]
            eT_a = eT_a[keep_e]
            eJ_a = eJ_a[keep_e]
            if eCap_a is not None:
                eCap_a = eCap_a[keep_e]
            base_max = int(base_a.max(initial=0))
        else:
            x = tot
    raise DivergedError(
        f"fixed-point iteration did not settle after {MAX_ITER} iterations",
        int(x.max(initial=0)),
    )


def _cs0(np, a):
    """``[0, a0, a0+a1, …]`` — shared helper for segment starts/sums."""
    out = np.empty(len(a) + 1, dtype=np.int64)
    out[0] = 0
    np.cumsum(a, out=out[1:])
    return out


# --------------------------------------------- python-backend policy stages


def _fcfs_values(pack: NetworkPack) -> List[List[int]]:
    out = []
    for m in range(pack.n_masters):
        nh = pack.master_stream_start[m + 1] - pack.master_stream_start[m]
        out.append([nh * pack.master_tc[m]] * nh)
    return out


def _dm_scalar_values(pack: NetworkPack) -> List[List[Optional[int]]]:
    return [
        list(kernels.dm_master_response_times(pack.master_specs(m),
                                              pack.master_tc[m]))
        for m in range(pack.n_masters)
    ]


def _dm_values(pack: NetworkPack,
               max_instances: int = 100_000) -> List[List[Optional[int]]]:
    """Eq. (16) for every master in the pack — the vector mirror of
    :func:`repro.perf.kernels.dm_master_response_times` (python-backend
    staging; the numpy backend stages the same lanes in
    :func:`_dm_flat_np`).

    Per-master ordering, priorities, blocking terms and the float
    utilisation guards stay scalar (bit-exact summation order); the
    busy periods and every ``(stream, instance)`` recursion become
    lanes.  Instances are evaluated for *all* q and folded — a
    monotone-map equivalence with the scalar early-break loop (the fold
    uses a value only when every instance converged feasibly, exactly
    when the scalar loop completes)."""
    results: List[List[Optional[int]]] = [
        [None] * (pack.master_stream_start[m + 1]
                  - pack.master_stream_start[m])
        for m in range(pack.n_masters)
    ]
    # Stage A: scalar prep; one busy-period lane per guard-passing rank.
    b_base: List[int] = []
    b_x0: List[int] = []
    b_counts: List[int] = []
    b_eC: List[int] = []
    b_eT: List[int] = []
    b_eJ: List[int] = []
    survivors: List[Tuple] = []  # (m, i, T, D, J, B, step0_tail, arr_prefix)
    for m in range(pack.n_masters):
        specs = pack.master_specs(m)
        n = len(specs)
        if not n:
            continue
        tc = pack.master_tc[m]
        order = sorted(range(n), key=lambda i: (specs[i][1], i))
        prio = [0] * n
        for p_, i in enumerate(order):
            prio[i] = p_
        # lint: disable=REP001 — utilisation guard seam: same float
        # U-test as the scalar kernels; verdicts stay integer
        utils = [tc / specs[i][0] for i in range(n)]
        arr_full = [(tc, specs[i][0], specs[i][2]) for i in order]
        step0_tail = 0
        last_rank = n - 1
        for rank, i in enumerate(order):
            T, D, J = specs[i]
            B = tc if rank < last_rank else 0
            u = 0.0  # lint: disable=REP001 — utilisation guard seam
            pi = prio[i]
            for j in range(n):
                if prio[j] < pi:
                    u += utils[j]
            u += utils[i]
            # lint: disable=REP001 — utilisation guard seam
            if not (u > 1.0 + 1e-12 or (B > 0 and u > 1.0 - 1e-12)):
                arr = arr_full[:rank]
                b_base.append(B)
                b_x0.append(B + (rank + 1) * tc)
                b_counts.append(rank + 1)
                for C_, T_, J_ in arr:
                    b_eC.append(C_)
                    b_eT.append(T_)
                    b_eJ.append(J_)
                b_eC.append(tc)
                b_eT.append(T)
                b_eJ.append(J)
                survivors.append((m, i, T, D, J, B, step0_tail, arr))
            step0_tail += (J // T + 1) * tc
    L_vals, _conv, _it = _run_lanes("ceil", b_base, b_x0, None, b_counts,
                                    b_eC, b_eT, b_eJ, None)
    # Stage B: one strict lane per (survivor, instance q).
    q_base: List[int] = []
    q_x0: List[int] = []
    q_limit: List[int] = []
    q_counts: List[int] = []
    q_eC: List[int] = []
    q_eT: List[int] = []
    q_eJ: List[int] = []
    q_meta: List[Tuple[int, int, int]] = []  # (survivor_id, q, r_shift)
    for sid, (m, i, T, D, J, B, step0_tail, arr) in enumerate(survivors):
        L = L_vals[sid]
        n_inst = -((-(L + J)) // T)
        if n_inst > max_instances:
            continue
        tc = pack.master_tc[m]
        for q in range(n_inst if n_inst > 1 else 1):
            Bq = B + q * tc
            q_base.append(Bq)
            q_x0.append(Bq + step0_tail)
            q_limit.append(q * T + D + J - tc)
            q_counts.append(len(arr))
            for C_, T_, J_ in arr:
                q_eC.append(C_)
                q_eT.append(T_)
                q_eJ.append(J_)
            q_meta.append((sid, q, tc - q * T))
    w_vals, w_conv, _it = _run_lanes("strict", q_base, q_x0, q_limit,
                                     q_counts, q_eC, q_eT, q_eJ, None)
    # Fold instances per survivor: feasible iff every q converged within
    # its deadline; the worst response is the max over q (identical to
    # the scalar early-break: a break implies infeasible, which voids
    # the partial maximum anyway).
    worst: Dict[int, int] = {}
    feasible: Dict[int, bool] = {}
    for lane, (sid, _q, r_shift) in enumerate(q_meta):
        _m, _i, _T, D, J, _B, _s, _arr = survivors[sid]
        if not w_conv[lane]:
            feasible[sid] = False
            continue
        r = int(w_vals[lane]) + r_shift
        if r > worst.get(sid, 0):
            worst[sid] = r
        if r + J > D:
            feasible[sid] = False
        elif sid not in feasible:
            feasible[sid] = True
    for sid, (m, i, _T, _D, J, _B, _s, _arr) in enumerate(survivors):
        if feasible.get(sid, False):
            results[m][i] = worst.get(sid, 0) + J
    return results


def _edf_scalar_values(pack: NetworkPack) -> List[List[Tuple]]:
    return [
        list(kernels.edf_master_response_times(pack.master_specs(m),
                                               pack.master_tc[m]))
        for m in range(pack.n_masters)
    ]


def _edf_values(pack: NetworkPack,
                limit_factor: int = 4) -> List[List[Tuple]]:
    """Eqs. (17)–(18) for every master — the vector mirror of
    :func:`repro.perf.kernels.edf_master_response_times` (python-backend
    staging; the numpy backend stages the same lanes in
    :func:`_edf_flat_np`).

    Per-master utilisation guards and offset generation stay scalar;
    the master busy periods and every ``(stream, offset)`` recursion
    become lanes (capped strict map, exact scalar exit order including
    the overshoot value).  The rare ``U ≈ 1`` hyperperiod branch runs
    through the scalar kernel unchanged."""
    results: List[List[Tuple]] = [[] for _ in range(pack.n_masters)]
    # Stage A: guards + one busy lane per normally-utilised master.
    b_base: List[int] = []
    b_x0: List[int] = []
    b_counts: List[int] = []
    b_eC: List[int] = []
    b_eT: List[int] = []
    b_eJ: List[int] = []
    normal: List[int] = []  # master ids with a busy lane, in lane order
    for m in range(pack.n_masters):
        specs = pack.master_specs(m)
        n = len(specs)
        if not n:
            continue
        tc = pack.master_tc[m]
        utils = 0.0  # lint: disable=REP001 — utilisation guard seam
        for T, _D, _J in specs:
            utils += tc / T  # lint: disable=REP001 — guard seam
        # lint: disable=REP001 — utilisation guard seam
        if utils > 1.0 + 1e-12:
            results[m] = [(None, None)] * n
            continue
        if utils > 1.0 - 1e-12:  # lint: disable=REP001 — guard seam
            # U == 1 hyperperiod branch: scalar kernel, unchanged.
            results[m] = list(
                kernels.edf_master_response_times(specs, tc, limit_factor)
            )
            continue
        b_base.append(tc)
        b_x0.append(tc + n * tc)
        b_counts.append(n)
        for T, _D, J in specs:
            b_eC.append(tc)
            b_eT.append(T)
            b_eJ.append(J)
        normal.append(m)
    L_vals, _conv, _it = _run_lanes("ceil", b_base, b_x0, None, b_counts,
                                    b_eC, b_eT, b_eJ, None)
    # Stage B: one capped lane per (stream, candidate offset).
    l_base: List[int] = []
    l_x0: List[int] = []
    l_limit: List[int] = []
    l_counts: List[int] = []
    l_eC: List[int] = []
    l_eT: List[int] = []
    l_eJ: List[int] = []
    l_eCap: List[int] = []
    l_meta: List[Tuple[int, int, int, int]] = []  # (m, i, a, tc)
    for pos, m in enumerate(normal):
        specs = pack.master_specs(m)
        tc = pack.master_tc[m]
        L = L_vals[pos]
        max_d = max(D for _T, D, _J in specs)
        sorted_entries = sorted(
            ((D, tc, T, J), i) for i, (T, D, J) in enumerate(specs)
        )
        results[m] = [(0, 0)] * len(specs)
        for i, (T, D, J) in enumerate(specs):
            limit = limit_factor * (L + D + J) + tc
            others = [e for e, idx in sorted_entries if idx != i]
            for a in kernels.candidate_offsets(specs, D, L):
                dl = a + D
                B = tc if max_d > dl else 0
                own = ((a + J) // T) * tc
                base = B + own
                x0 = base
                cnt = 0
                for Dj, Cj, Tj, Jj in others:
                    if Dj > dl:
                        break
                    cap = 1 + (dl - Dj + Jj) // Tj
                    by_time = 1 + Jj // Tj
                    x0 += (by_time if by_time < cap else cap) * Cj
                    l_eC.append(Cj)
                    l_eT.append(Tj)
                    l_eJ.append(Jj)
                    l_eCap.append(cap)
                    cnt += 1
                l_base.append(base)
                l_x0.append(x0)
                l_limit.append(limit)
                l_counts.append(cnt)
                l_meta.append((m, i, a, tc))
    x_vals, _conv, _it = _run_lanes("capped", l_base, l_x0, l_limit,
                                    l_counts, l_eC, l_eT, l_eJ, l_eCap)
    # Fold offsets per stream: first strict maximum, offsets ascending —
    # identical to the scalar `if r > best` scan.
    for lane, (m, i, a, tc) in enumerate(l_meta):
        x = int(x_vals[lane])
        r = tc + x - a
        if r < tc:
            r = tc
        best, _best_a = results[m][i]
        if r > best:
            results[m][i] = (r, a)
    return results


# ---------------------------------------------- numpy-backend policy stages


def _fcfs_flat_np(pack: NetworkPack):
    np = _load_numpy()
    d = pack.np_arrays()
    sm = d["str_master"]
    resp = d["m_count"][sm] * d["m_tc"][sm]
    return resp, None, np.ones(len(sm), dtype=bool)


def _dm_flat_np(pack: NetworkPack, max_instances: int = 100_000):
    """Eq. (16) staged entirely as arrays: one ``lexsort`` ranks every
    stream of every master at once, segment expansion builds the busy
    and per-instance lanes, ``reduceat`` folds the verdicts.  Returns
    ``(resp, None, valid)`` flat over the packed streams in declaration
    order (``valid`` False = unschedulable/None).

    The float utilisation guard is interval-checked: cumsum reordering
    error is ≪ the 1e-9 margin, so streams whose guard clears the margin
    keep the scalar verdict; masters with any stream inside the margin
    re-run through the scalar kernel, which sums in the bit-exact
    declaration order."""
    np = _load_numpy()
    d = pack.np_arrays()
    i64 = np.int64
    aT, aD, aJ = d["aT"], d["aD"], d["aJ"]
    sm = d["str_master"]
    m_start, m_count, m_tc = d["m_start"], d["m_count"], d["m_tc"]
    S = len(aT)
    resp = np.zeros(S, dtype=i64)
    valid = np.zeros(S, dtype=bool)
    if not S:
        return resp, None, valid
    # Priority order: (master, D, declaration index).  The sort is
    # stable with master as primary key and masters are contiguous, so
    # segment m occupies the same positions [m_start, m_start+count).
    ord_ = np.lexsort((np.arange(S), aD, sm))
    seg0 = m_start[sm]
    nseg = m_count[sm]
    rank = np.arange(S, dtype=i64) - seg0
    tc_s = m_tc[sm]
    Tp, Dp, Jp = aT[ord_], aD[ord_], aJ[ord_]
    B = np.where(rank < nseg - 1, tc_s, 0)
    # Interval utilisation guard (inclusive segmented cumsum, priority
    # order — the reorder vs. the scalar declaration-order sum is what
    # the margin absorbs).
    # lint: disable=REP001 — interval utilisation guard seam: float
    # bounds with an explicit margin; ambiguous lanes re-run scalar
    utils_p = tc_s / Tp.astype(np.float64)
    cs_u = np.cumsum(utils_p)
    u = cs_u - (cs_u[seg0] - utils_p[seg0])
    margin = 1e-9 * (u + 1.0)  # lint: disable=REP001 — guard seam
    hiB = B > 0
    # lint: disable=REP001 — interval utilisation guard seam
    def_skip = (u - margin > 1.0 + 1e-12) | (hiB & (u - margin > 1.0 - 1e-12))
    # lint: disable=REP001 — interval utilisation guard seam
    def_keep = (u + margin <= 1.0 + 1e-12) & (  # lint: disable=REP001
        ~hiB | (u + margin <= 1.0 - 1e-12))  # lint: disable=REP001
    amb = ~(def_skip | def_keep)
    m_ok = np.ones(pack.n_masters, dtype=bool)
    if amb.any():
        bad = np.unique(sm[amb])
        m_ok[bad] = False
        for m in bad.tolist():
            vals = kernels.dm_master_response_times(
                pack.master_specs(m), pack.master_tc[m], max_instances)
            lo = pack.master_stream_start[m]
            for k, v in enumerate(vals):
                if v is not None:
                    resp[lo + k] = v
                    valid[lo + k] = True
    # Exclusive segmented cumsum of the strict zero-step contributions
    # (Σ (⌊J/T⌋+1)·tc over higher ranks) — the lane seed tail.
    kJ = Jp // Tp + 1
    if int(kJ.max()) * int(tc_s.max()) * (S + 1) >= _SAFE_TOTAL:
        raise _VectorRangeError()
    t0 = kJ * tc_s
    cs_t = np.cumsum(t0)
    excl = cs_t - t0
    step0 = excl - excl[seg0]
    sur = def_keep & m_ok[sm]
    sur_idx = np.nonzero(sur)[0]
    if not len(sur_idx):
        return resp, None, valid
    # Busy-period lanes: entries = priority ranks 0..rank (own last).
    counts_b = rank[sur_idx] + 1
    E = int(counts_b.sum())
    if E > _MAX_LANES:
        raise _VectorRangeError()
    ent_rel = np.arange(E, dtype=i64) - np.repeat(_cs0(np, counts_b)[:-1],
                                                  counts_b)
    ent_pos = np.repeat(seg0[sur_idx], counts_b) + ent_rel
    base_b = B[sur_idx]
    L_vals, _conv, it = _lanes_np(
        "ceil", base_b, base_b + counts_b * tc_s[sur_idx], None, counts_b,
        tc_s[ent_pos], Tp[ent_pos], Jp[ent_pos], None)
    _counters.vectorized += it
    # Instance lanes: one strict lane per (survivor, q).
    T_s, D_s, J_s = Tp[sur_idx], Dp[sur_idx], Jp[sur_idx]
    n_inst = -((-(L_vals + J_s)) // T_s)
    small = n_inst <= max_instances
    sur2 = sur_idx[small]
    if not len(sur2):
        return resp, None, valid
    nq = np.maximum(n_inst[small], 1)
    Q = int(nq.sum())
    if Q > _MAX_LANES:
        raise _VectorRangeError()
    lane_sur = np.repeat(np.arange(len(sur2)), nq)
    qstarts = _cs0(np, nq)[:-1]
    qv = np.arange(Q, dtype=i64) - np.repeat(qstarts, nq)
    tc_l = tc_s[sur2][lane_sur]
    T_l = T_s[small][lane_sur]
    D_l = D_s[small][lane_sur]
    J_l = J_s[small][lane_sur]
    if (int(qv.max()) * int(T_l.max()) + int(D_l.max()) + int(J_l.max())
            >= _SAFE_TOTAL):
        raise _VectorRangeError()
    Bq = B[sur2][lane_sur] + qv * tc_l
    counts_q = rank[sur2][lane_sur]
    Eq = int(counts_q.sum())
    if Eq > _MAX_LANES:
        raise _VectorRangeError()
    ent_rel_q = np.arange(Eq, dtype=i64) - np.repeat(_cs0(np, counts_q)[:-1],
                                                     counts_q)
    ent_pos_q = np.repeat(seg0[sur2][lane_sur], counts_q) + ent_rel_q
    w, conv, it = _lanes_np(
        "strict", Bq, Bq + step0[sur2][lane_sur], qv * T_l + D_l + J_l - tc_l,
        counts_q, tc_s[ent_pos_q], Tp[ent_pos_q], Jp[ent_pos_q], None)
    _counters.vectorized += it
    # Fold instances per survivor (lanes contiguous, nq ≥ 1 each).
    r = w + tc_l - qv * T_l
    ok_lane = conv & (r + J_l <= D_l)
    feas = np.logical_and.reduceat(ok_lane, qstarts)
    worst = np.maximum.reduceat(r, qstarts)
    decl = ord_[sur2]
    resp[decl[feas]] = (worst + J_s[small])[feas]
    valid[decl[feas]] = True
    return resp, None, valid


def _edf_flat_np(pack: NetworkPack, limit_factor: int = 4):
    """Eqs. (17)–(18) staged entirely as arrays: candidate offsets come
    from an (i, j) pair expansion + global ``lexsort``/dedup, deadline
    scopes from a full-cross selection mask, the first-strict-max fold
    from paired ``reduceat`` passes.  Returns ``(resp, crit, valid)``
    flat over the packed streams in declaration order."""
    np = _load_numpy()
    d = pack.np_arrays()
    i64 = np.int64
    aT, aD, aJ = d["aT"], d["aD"], d["aJ"]
    sm = d["str_master"]
    m_start, m_count, m_tc = d["m_start"], d["m_count"], d["m_tc"]
    S = len(aT)
    M = pack.n_masters
    resp = np.zeros(S, dtype=i64)
    crit = np.zeros(S, dtype=i64)
    valid = np.zeros(S, dtype=bool)
    if not S:
        return resp, crit, valid
    # Interval utilisation guard per master (declaration-order cumsum;
    # margin as in the DM stage).
    # lint: disable=REP001 — interval utilisation guard seam: float
    # bounds with an explicit margin; ambiguous lanes re-run scalar
    utils_el = m_tc[sm] / aT.astype(np.float64)
    cs_u = np.cumsum(utils_el)
    nz = m_count > 0
    starts_nz = m_start[nz]
    ends_nz = starts_nz + m_count[nz]
    u_m = np.zeros(M)
    u_m[nz] = cs_u[ends_nz - 1] - (cs_u[starts_nz] - utils_el[starts_nz])
    margin = 1e-9 * (u_m + 1.0)  # lint: disable=REP001 — guard seam
    # lint: disable=REP001 — interval utilisation guard seam
    def_none = nz & (u_m - margin > 1.0 + 1e-12)
    def_norm = nz & (u_m + margin <= 1.0 - 1e-12)  # lint: disable=REP001
    scalar_m = nz & ~def_none & ~def_norm
    if scalar_m.any():
        # Ambiguous guard or the U ≈ 1 hyperperiod region: the scalar
        # kernel decides with the bit-exact declaration-order sum.
        for m in np.nonzero(scalar_m)[0].tolist():
            vals = kernels.edf_master_response_times(
                pack.master_specs(m), pack.master_tc[m], limit_factor)
            lo = pack.master_stream_start[m]
            for k, (rv, av) in enumerate(vals):
                if rv is not None:
                    resp[lo + k] = rv
                    crit[lo + k] = av
                    valid[lo + k] = True
    nm_idx = np.nonzero(def_norm)[0]
    if not len(nm_idx):
        return resp, crit, valid
    # Busy lanes: one per normal master, blocking = tc, entries = all
    # its streams (order irrelevant: the map sums them).
    cnt_n = m_count[nm_idx]
    tc_n = m_tc[nm_idx]
    En = int(cnt_n.sum())
    ent_rel = np.arange(En, dtype=i64) - np.repeat(_cs0(np, cnt_n)[:-1],
                                                   cnt_n)
    ent_pos = np.repeat(m_start[nm_idx], cnt_n) + ent_rel
    L_vals, _conv, it = _lanes_np(
        "ceil", tc_n, tc_n + cnt_n * tc_n, None, cnt_n,
        np.repeat(tc_n, cnt_n), aT[ent_pos], aJ[ent_pos], None)
    _counters.vectorized += it
    L_of_m = np.zeros(M, dtype=i64)
    L_of_m[nm_idx] = L_vals
    maxD_m = np.zeros(M, dtype=i64)
    maxD_m[nz] = np.maximum.reduceat(aD, starts_nz)
    # Candidate offsets: (i, j) pair expansion per normal master —
    # a = D_j − D_i + k·T_j for every k with 0 ≤ a ≤ L, plus the
    # jitter points a − J_j ≥ 0, plus the zero point per stream —
    # then one global sort + dedup (kernels.candidate_offsets exactly).
    c2 = cnt_n * cnt_n
    P2 = int(c2.sum())
    if P2 > _MAX_LANES:
        raise _VectorRangeError()
    prel = np.arange(P2, dtype=i64) - np.repeat(_cs0(np, c2)[:-1], c2)
    p_m = np.repeat(np.arange(len(nm_idx)), c2)
    mstart_p = np.repeat(m_start[nm_idx], c2)
    c_of = cnt_n[p_m]
    i_pos = mstart_p + prel // c_of
    j_pos = mstart_p + prel % c_of
    base_off = aD[j_pos] - aD[i_pos]
    Tj = aT[j_pos]
    Jj = aJ[j_pos]
    Lp = L_vals[p_m]
    k0 = np.maximum(0, -(base_off // Tj))
    a_first = base_off + k0 * Tj
    kcnt = np.where(a_first <= Lp, (Lp - a_first) // Tj + 1, 0)
    A = int(kcnt.sum())
    if 2 * A + S > _MAX_LANES:
        raise _VectorRangeError()
    a_pair = np.repeat(np.arange(P2), kcnt)
    t = np.arange(A, dtype=i64) - np.repeat(_cs0(np, kcnt)[:-1], kcnt)
    a_vals = a_first[a_pair] + t * Tj[a_pair]
    a_tag = i_pos[a_pair]
    aj_vals = a_vals - Jj[a_pair]
    keep_j = (Jj[a_pair] > 0) & (aj_vals >= 0)
    zero_tag = np.nonzero(def_norm[sm])[0]
    vals_all = np.concatenate(
        [np.zeros(len(zero_tag), dtype=i64), a_vals, aj_vals[keep_j]])
    tags_all = np.concatenate([zero_tag, a_tag, a_tag[keep_j]])
    order2 = np.lexsort((vals_all, tags_all))
    v_s = vals_all[order2]
    t_s = tags_all[order2]
    keep = np.empty(len(v_s), dtype=bool)
    keep[0] = True
    keep[1:] = (t_s[1:] != t_s[:-1]) | (v_s[1:] != v_s[:-1])
    lane_a = v_s[keep]
    lane_i = t_s[keep]
    # One capped lane per (stream, offset); offsets ascending per
    # stream by construction of the sort.
    nl = len(lane_a)
    m_l = sm[lane_i]
    tc_L = m_tc[m_l]
    D_i, T_i, J_i = aD[lane_i], aT[lane_i], aJ[lane_i]
    Lmax = int(L_vals.max(initial=0))
    Dmax = int(aD.max(initial=0))
    Jmax = int(aJ.max(initial=0))
    tcmax = int(tc_n.max(initial=0))
    Tmin = int(aT.min(initial=1))
    if (limit_factor * (Lmax + Dmax + Jmax) + tcmax >= _SAFE_TOTAL
            or ((Lmax + Jmax) // Tmin + 1) * tcmax >= _SAFE_TOTAL):
        raise _VectorRangeError()
    dl = lane_a + D_i
    Bl = np.where(maxD_m[m_l] > dl, tc_L, 0)
    own = ((lane_a + J_i) // T_i) * tc_L
    lim_l = limit_factor * (L_of_m[m_l] + D_i + J_i) + tc_L
    # Deadline scope: full-cross candidates per lane, mask-selected
    # (D_j ≤ a + D_i, j ≠ i; order within a lane is irrelevant — the
    # map sums the scope).
    c_l = m_count[m_l]
    EC = int(c_l.sum())
    if EC > _MAX_LANES:
        raise _VectorRangeError()
    ent_lane = np.repeat(np.arange(nl), c_l)
    erel = np.arange(EC, dtype=i64) - np.repeat(_cs0(np, c_l)[:-1], c_l)
    epos = np.repeat(m_start[m_l], c_l) + erel
    sel = (aD[epos] <= dl[ent_lane]) & (epos != lane_i[ent_lane])
    epos_s = epos[sel]
    elane_s = ent_lane[sel]
    cnts = np.bincount(elane_s, minlength=nl).astype(i64)
    eT2, eJ2, eD2 = aT[epos_s], aJ[epos_s], aD[epos_s]
    eC2 = m_tc[sm[epos_s]]
    cap = 1 + (dl[elane_s] - eD2 + eJ2) // eT2
    kseed = np.minimum(1 + eJ2 // eT2, cap)
    if (int(kseed.max(initial=0)) * int(eC2.max(initial=0))
            * int(cnts.max(initial=0))
            + int(Bl.max(initial=0)) + int(own.max(initial=0))
            >= _SAFE_TOTAL):
        raise _VectorRangeError()
    base_l = Bl + own
    csz = _cs0(np, kseed * eC2)
    ends = np.cumsum(cnts)
    x0_l = base_l + csz[ends] - csz[ends - cnts]
    x, _conv, it = _lanes_np("capped", base_l, x0_l, lim_l, cnts,
                             eC2, eT2, eJ2, cap)
    _counters.vectorized += it
    # r from the exit value (converged or overshoot — the scalar keeps
    # both); fold per stream = first strict maximum over ascending a.
    r = np.maximum(tc_L + x - lane_a, tc_L)
    fstart = np.nonzero(np.concatenate(([True], lane_i[1:] != lane_i[:-1])))[0]
    seg_counts = np.diff(np.concatenate((fstart, [nl])))
    best = np.maximum.reduceat(r, fstart)
    cand = np.where(r == np.repeat(best, seg_counts),
                    np.arange(nl, dtype=i64), nl)
    first = np.minimum.reduceat(cand, fstart)
    sid = lane_i[fstart]
    resp[sid] = best
    crit[sid] = lane_a[first]
    valid[sid] = True
    return resp, crit, valid


def _flat_values(pack: NetworkPack, policy: str):
    """Numpy-backend flat results ``(resp, crit_or_None, valid)`` for a
    policy, cached on the pack; ``None`` when the pass fell back to the
    scalar kernels (the per-master cache holds the values instead)."""
    if policy not in pack._flat:
        try:
            if policy == "fcfs":
                pack._flat[policy] = _fcfs_flat_np(pack)
            elif policy == "dm":
                pack._flat[policy] = _dm_flat_np(pack)
            elif policy == "edf":
                pack._flat[policy] = _edf_flat_np(pack)
            else:
                raise ValueError(f"unknown policy {policy!r}")
        except _VectorRangeError:
            pack._flat[policy] = None
            pack._pm[policy] = (_dm_scalar_values(pack) if policy == "dm"
                                else _edf_scalar_values(pack))
    return pack._flat[policy]


def master_values(pack: NetworkPack, policy: str) -> List[List]:
    """Per-master response values for every packed master, in the shape
    of the scalar per-master kernels (``fcfs``: R per stream; ``dm``:
    Optional[R]; ``edf``: ``(R, critical_a)``)."""
    if policy == "fcfs":
        return _fcfs_values(pack)
    if policy not in ("dm", "edf"):
        raise ValueError(f"unknown policy {policy!r}")
    if policy in pack._pm:
        return pack._pm[policy]
    if backend_name() == "numpy":
        flat = _flat_values(pack, policy)
        if flat is None:
            return pack._pm[policy]
        resp, crit, valid = flat
        out: List[List] = []
        for m in range(pack.n_masters):
            lo = pack.master_stream_start[m]
            hi = pack.master_stream_start[m + 1]
            if policy == "dm":
                out.append([int(resp[s]) if valid[s] else None
                            for s in range(lo, hi)])
            else:
                out.append([(int(resp[s]), int(crit[s])) if valid[s]
                            else (None, None) for s in range(lo, hi)])
        pack._pm[policy] = out
        return out
    try:
        vals = _dm_values(pack) if policy == "dm" else _edf_values(pack)
    except _VectorRangeError:
        vals = (_dm_scalar_values(pack) if policy == "dm"
                else _edf_scalar_values(pack))
    pack._pm[policy] = vals
    return vals


def batch_pairs(pack: NetworkPack, policy: str):
    """Yield ``(original_index, tcycle, [(response, deadline), …])`` per
    packed network — the :func:`repro.perf.batch._fold_responses`
    input, straight from the arrays."""
    values = master_values(pack, policy)
    for p in range(pack.n_packed):
        pairs: List[Tuple[Optional[int], int]] = []
        for m in pack.masters_of(p):
            specs = pack.master_specs(m)
            vals = values[m]
            if policy == "edf":
                vals = [r for r, _a in vals]
            pairs.extend(
                (None if r is None else int(r), d)
                for (_t, d, _j), r in zip(specs, vals)
            )
        yield pack.indices[p], pack.tc[p], pairs


def _fold_pairs(pairs):
    """(schedulable, worst_response, worst_slack) — the exact fold of
    :func:`repro.perf.batch._fold_responses`."""
    schedulable = True
    worst_r: Optional[int] = None
    worst_slack: Optional[int] = None
    for r, dd in pairs:
        if r is None:
            schedulable = False
            continue
        if r > dd:
            schedulable = False
        if worst_r is None or r > worst_r:
            worst_r = r
        slack = dd - r
        if worst_slack is None or slack < worst_slack:
            worst_slack = slack
    return schedulable, worst_r, worst_slack if schedulable else None


def batch_summaries(pack: NetworkPack, policy: str):
    """``(original_index, tcycle, schedulable, worst_response,
    worst_slack)`` per packed network — the fully-folded
    :class:`repro.perf.batch.BatchResult` fields.  The numpy backend
    folds over the network CSR with ``reduceat``; the python backend
    folds the pairs exactly as ``batch._fold_responses`` does."""
    if backend_name() != "numpy":
        return [(idx, tc) + _fold_pairs(pairs)
                for idx, tc, pairs in batch_pairs(pack, policy)]
    flat = _flat_values(pack, policy)
    if flat is None:
        return [(idx, tc) + _fold_pairs(pairs)
                for idx, tc, pairs in batch_pairs(pack, policy)]
    np = _load_numpy()
    d = pack.np_arrays()
    i64 = np.int64
    resp, _crit, valid = flat
    aD = d["aD"]
    nss = d["nss"]
    P = pack.n_packed
    cnt = nss[1:] - nss[:-1]
    ok = valid & (resp <= aD)
    cso = _cs0(np, ok.astype(i64))
    sched = (cso[nss[1:]] - cso[nss[:-1]]) == cnt
    BIG = _SAFE_TOTAL
    wr_m = np.full(P, -1, dtype=i64)
    sl_m = np.full(P, BIG, dtype=i64)
    nzn = cnt > 0
    if nzn.any():
        starts = nss[:-1][nzn]
        wr_m[nzn] = np.maximum.reduceat(np.where(valid, resp, -1), starts)
        sl_m[nzn] = np.minimum.reduceat(np.where(valid, aD - resp, BIG),
                                        starts)
    return [
        (idx, tc, sch,
         None if wr < 0 else wr,
         sl if sch and sl < BIG else None)
        for idx, tc, sch, wr, sl in zip(
            pack.indices, pack.tc, sched.tolist(), wr_m.tolist(),
            sl_m.tolist())
    ]


def response_rows(network, policy: str,
                  ttr: Optional[int] = None) -> Dict[str, Any]:
    """``{"tcycle": …, "rows": [[master, stream, R], …]}`` for one
    network through the vector kernels — the same shape as the golden
    ``analysis`` rows, for the three-way oracles.  Falls back to the
    scalar analysis for unpackable networks (identical semantics)."""
    pack = pack_networks([network], ttr=ttr)
    if pack.fallback:
        from ..profibus import ttr as ttr_mod

        res = ttr_mod.analyse(network, policy, ttr=ttr)
        return {
            "tcycle": res.tcycle,
            "rows": [[sr.master, sr.stream.name, sr.R]
                     for sr in res.per_stream],
        }
    values = master_values(pack, policy)
    rows: List[List[Any]] = []
    for m, master in zip(pack.masters_of(0), network.masters):
        vals = values[m]
        if policy == "edf":
            vals = [r for r, _a in vals]
        for stream, r in zip(master.high_streams, vals):
            rows.append([master.name, stream.name,
                         None if r is None else int(r)])
    return {"tcycle": pack.tc[0], "rows": rows}
