"""Global analysis-mode selection (generic / fast / vectorized).

Three modes drive the same analyses to bit-identical values:

``generic``
    The exact reference path — generic fixed-point drivers over the
    object model.  Always available, never cached.
``fast``
    The monomorphic all-int kernels of :mod:`repro.perf.kernels` plus
    the instance-keyed caches.  Bit-identical to ``generic``
    (property-tested), so **on by default**.
``vectorized``
    The structure-of-arrays batch kernels of
    :mod:`repro.perf.vector`: whole batches of networks advance their
    fixed-point recurrences together, one instruction stream per sweep.
    Scalar (non-batch) entry points under this mode use the fast
    kernels — the vector engine engages at the batch drivers
    (:func:`repro.perf.batch.analyse_many`).

The switch exists for three consumers: the benchmark driver (measures
every mode on the same workload), the property tests / fuzz oracle /
corpus check (assert cross-mode bit-equality), and the API ``mode``
request field.

Environment overrides: ``REPRO_DISABLE_FASTPATH`` (any non-empty value)
forces ``generic`` process-wide — handy for bisecting a suspected
fast-path discrepancy without touching code.  ``REPRO_ANALYSIS_MODE``
picks any of the three modes by name (``REPRO_DISABLE_FASTPATH``
wins).  ``REPRO_DISABLE_NUMPY`` is honoured by
:mod:`repro.perf.vector` and forces its pure-python backend.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

#: The recognised analysis modes, in baseline-first order.
ANALYSIS_MODES = ("generic", "fast", "vectorized")


def _initial_mode() -> str:
    if os.environ.get("REPRO_DISABLE_FASTPATH"):
        return "generic"
    env = os.environ.get("REPRO_ANALYSIS_MODE", "")
    if env in ANALYSIS_MODES:
        return env
    return "fast"


_mode: str = _initial_mode()


def analysis_mode() -> str:
    """The active analysis mode (``generic``/``fast``/``vectorized``)."""
    return _mode


def set_analysis_mode(mode: str) -> str:
    """Select the analysis mode; returns the previous mode."""
    if mode not in ANALYSIS_MODES:
        raise ValueError(
            f"unknown analysis mode {mode!r} (expected one of {ANALYSIS_MODES})"
        )
    global _mode
    previous = _mode
    # lint: disable=REP011 — this *is* the mode-switch API; callers on
    # determinism-critical paths save/restore via analysis_mode_set()
    _mode = mode
    return previous


@contextmanager
def analysis_mode_set(mode: str):
    """Run a block under ``mode``, restoring the previous mode after."""
    previous = set_analysis_mode(mode)
    try:
        yield
    finally:
        set_analysis_mode(previous)


def fast_path_enabled() -> bool:
    """Are the specialised integer kernels active?

    True under both accelerated modes: the vectorized mode uses the
    fast scalar kernels wherever the vector engine does not apply
    (single-network entry points, unpackable networks).
    """
    return _mode != "generic"


def set_fast_path(enabled: bool) -> bool:
    """Enable/disable the fast paths; returns the previous setting.

    Boolean view of the mode switch, kept for the established
    callers/tests: ``True`` selects ``fast``, ``False`` selects
    ``generic``.  Code that must preserve a ``vectorized`` selection
    across a scope should use :func:`set_analysis_mode` /
    :func:`analysis_mode_set` instead.
    """
    previous = set_analysis_mode("fast" if enabled else "generic")
    return previous != "generic"


@contextmanager
def fast_path_disabled():
    """Run a block on the generic exact path (baseline measurement)."""
    previous = set_analysis_mode("generic")
    try:
        yield
    finally:
        set_analysis_mode(previous)
