"""Global fast-path switch.

The integer kernels of :mod:`repro.perf.kernels` produce bit-identical
results to the generic exact path, so they are **on by default**.  The
switch exists for two consumers:

* the benchmark driver, which measures the generic path as its baseline
  on the same workload (``repro-cli bench``);
* the property tests, which assert fast/generic equality by running both
  paths on identical inputs.

Setting the environment variable ``REPRO_DISABLE_FASTPATH`` (to any
non-empty value) disables the fast paths process-wide — handy for
bisecting a suspected fast-path discrepancy without touching code.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

_enabled: bool = not os.environ.get("REPRO_DISABLE_FASTPATH")


def fast_path_enabled() -> bool:
    """Are the specialised integer kernels active?"""
    return _enabled


def set_fast_path(enabled: bool) -> bool:
    """Enable/disable the fast paths; returns the previous setting."""
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    return previous


@contextmanager
def fast_path_disabled():
    """Run a block on the generic exact path (baseline measurement)."""
    previous = set_fast_path(False)
    try:
        yield
    finally:
        set_fast_path(previous)
