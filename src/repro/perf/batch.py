"""Embarrassingly-parallel batch analysis drivers.

The design-space exploration layers — sweeps, acceptance curves, the E5
benchmark, the fuzzing campaigns — all evaluate pure per-item work over
large grids with no cross-item dependencies.  This module gives that
layer one engine:

* :func:`pooled_map` / :func:`pooled_imap` — chunked process-pool map
  over any picklable function (a chunk amortises pickling and lets the
  per-master / per-set memo caches warm up inside each worker); workers
  inherit the caller's analysis mode and report their fixed-point
  iteration counts back into the parent's tallies, fast / generic /
  vectorized separately;
* :func:`analyse_many` — the (network × policy) analysis grid on top of
  it, with per-call ``mode`` selection (``vectorized`` cuts the grid
  into SoA slabs for :mod:`repro.perf.vector`);
* :func:`generate_networks` — reproducible workload generation threading
  one :class:`random.Random` end-to-end (no global ``random`` state);
* :func:`acceptance_curve` — the E5 experiment (fraction of random
  networks schedulable per policy per deadline-tightness level) on top
  of both.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from functools import partial
from random import Random
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..gen.network_gen import random_network
from ..profibus.network import Network, stream_specs
from ..profibus.timing import tcycle as compute_tcycle
from ..profibus.timing import tdel
from ..profibus.ttr import analyse
from . import kernels
from .config import (
    analysis_mode,
    analysis_mode_set,
    fast_path_enabled,
    set_analysis_mode,
)
from .stats import counters

DEFAULT_POLICIES: Tuple[str, ...] = ("fcfs", "dm", "edf")


@dataclass(frozen=True, slots=True)
class BatchResult:
    """One (network, policy) analysis outcome, flattened for transport."""

    index: int  # position of the network in the submitted sequence
    policy: str
    schedulable: bool
    worst_response: Optional[int]
    worst_slack: Optional[int]
    tcycle: int


def _fold_responses(index, policy, tcycle, pairs) -> BatchResult:
    """Fold ``(response, deadline)`` pairs into one BatchResult — the
    single definition of schedulable / worst_response / worst_slack used
    by both the kernel summary and the full-analysis path (so the
    bench's fast/generic consistency check compares real work, not two
    folds that could drift apart)."""
    schedulable = True
    worst_r: Optional[int] = None
    worst_slack: Optional[int] = None
    for r, d in pairs:
        if r is None:
            schedulable = False
            continue
        if r > d:
            schedulable = False
        if worst_r is None or r > worst_r:
            worst_r = r
        slack = d - r
        if worst_slack is None or slack < worst_slack:
            worst_slack = slack
    return BatchResult(
        index=index,
        policy=policy,
        schedulable=schedulable,
        worst_response=worst_r,
        worst_slack=worst_slack if schedulable else None,
        tcycle=tcycle,
    )


def _fast_summary(index: int, network: Network,
                  policy: str) -> Optional[BatchResult]:
    """BatchResult fields straight from the whole-master kernels, without
    materialising StreamResponse / NetworkAnalysis rows.

    Returns ``None`` when a master has non-int stream attributes (the
    caller falls back to the full analysis path).  Field-for-field
    identical to summarising ``analyse(network, policy)`` — the deadline
    used for slack/schedulability is the same stream ``D`` the specs
    carry, and the per-stream responses come from the same kernels the
    analysis modules use (property-tested in ``tests/test_perf_batch``).
    """
    tc = compute_tcycle(network, network.require_ttr(), refined=False)
    if type(tc) is not int:
        return None
    pairs = []
    for master in network.masters:
        specs = stream_specs(master)
        if specs is None:
            return None
        if not specs:
            continue
        if policy == "fcfs":
            r = len(specs) * tc
            values = [r] * len(specs)
        elif policy == "dm":
            values = kernels.dm_master_response_times(specs, tc)
        elif policy == "edf":
            values = [
                r for r, _a in kernels.edf_master_response_times(specs, tc)
            ]
        else:
            return None
        pairs.extend((r, d) for (_t, d, _j), r in zip(specs, values))
    return _fold_responses(index, policy, tc, pairs)


def _analyse_one(index: int, network: Network, policy: str) -> BatchResult:
    if fast_path_enabled():
        summary = _fast_summary(index, network, policy)
        if summary is not None:
            return summary
    res = analyse(network, policy)
    return _fold_responses(
        index, policy, res.tcycle,
        ((sr.R, sr.stream.D) for sr in res.per_stream),
    )


def _pooled_chunk(
    payload: Tuple[Callable[[Any], Any], List[Any], str]
) -> Tuple[List[Any], int, int, int]:
    """Worker entry: run one chunk, return results + all three iteration
    tallies.  The counts travel back *separately* — a fast-mode worker
    can still take generic fallbacks (non-int streams), a vectorized
    worker still runs fast kernels for unpackable networks, and folding
    one combined number into a single parent bucket used to credit those
    iterations to the wrong path."""
    fn, items, mode = payload
    set_analysis_mode(mode)
    counters.reset()
    results = [fn(item) for item in items]
    return results, counters.fast, counters.generic, counters.vectorized


def pooled_imap(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    workers: Optional[int] = None,
    chunksize: Optional[int] = None,
) -> Iterator[Any]:
    """Yield ``fn(item)`` for every item, in submission order.

    ``workers=None`` uses ``os.cpu_count()``; ``workers<=1`` (or fewer
    than two items) runs serial in-process with no pool overhead.  In
    pooled mode the items are split into chunks (one pickling round trip
    each, memo caches warm up inside a chunk) and results stream back
    chunk by chunk as workers finish, which lets callers checkpoint
    long campaigns incrementally.  ``fn`` must be picklable: a
    module-level function or a :func:`functools.partial` of one.

    Workers inherit the caller's analysis mode, and their fixed-point
    iteration counts are folded into this process's
    :data:`repro.perf.stats.counters` — fast into fast, generic into
    generic, vectorized into vectorized — so accounting is identical to
    a serial run.
    """
    if workers is None:
        workers = os.cpu_count() or 1
    items = list(items)
    if workers <= 1 or len(items) < 2:
        for item in items:
            yield fn(item)
        return
    if chunksize is None:
        # ~4 chunks per worker balances scheduling slack vs. pickling.
        chunksize = max(1, len(items) // (workers * 4))
    chunks = [
        (fn, items[i:i + chunksize], analysis_mode())
        for i in range(0, len(items), chunksize)
    ]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        for results, fast_iters, generic_iters, vector_iters in pool.map(
            _pooled_chunk, chunks
        ):
            counters.fast += fast_iters
            counters.generic += generic_iters
            counters.vectorized += vector_iters
            yield from results


def pooled_map(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    workers: Optional[int] = None,
    chunksize: Optional[int] = None,
) -> List[Any]:
    """:func:`pooled_imap`, materialised."""
    return list(pooled_imap(fn, items, workers=workers, chunksize=chunksize))


def _analyse_pair(job: Tuple[int, Network],
                  policies: Sequence[str]) -> List[BatchResult]:
    index, network = job
    return [_analyse_one(index, network, policy) for policy in policies]


def _vector_slab(job: Tuple[int, List[Network]],
                 policies: Sequence[str]) -> List[BatchResult]:
    """One SoA pack per slab of networks: every policy's lanes advance
    over the whole slab at once; unpackable networks take the scalar
    per-network path (fast kernels — ``vectorized`` implies them)."""
    from . import vector

    start, networks = job
    rows: List[BatchResult] = []
    pack = vector.pack_networks(networks)
    # One summary list per policy over the whole slab, then emit in
    # (index, policy) order: packed networks and fallback indices are
    # both ascending, so slab outputs concatenate globally sorted and
    # the driver never needs a comparison sort.
    summaries = [vector.batch_summaries(pack, policy) for policy in policies]
    fb = pack.fallback
    fi = 0
    n_fb = len(fb)
    for p, per_policy in enumerate(zip(*summaries)):
        net_idx = per_policy[0][0]
        while fi < n_fb and fb[fi] < net_idx:
            for policy in policies:
                rows.append(_analyse_one(start + fb[fi], networks[fb[fi]],
                                         policy))
            fi += 1
        for policy, (idx, tc, sched, wr, ws) in zip(policies, per_policy):
            rows.append(BatchResult(start + idx, policy, sched, wr, ws, tc))
    while fi < n_fb:
        for policy in policies:
            rows.append(_analyse_one(start + fb[fi], networks[fb[fi]], policy))
        fi += 1
    return rows


def _analyse_many_vectorized(
    networks: List[Network],
    policies: Sequence[str],
    workers: Optional[int],
    chunksize: Optional[int],
) -> List[BatchResult]:
    """:func:`analyse_many` through the SoA batch kernels: the grid is
    cut into slabs (one per pool chunk, or a single slab when serial)
    and each slab's networks advance together."""
    if workers is None:
        workers = os.cpu_count() or 1
    if workers <= 1 or len(networks) < 2 * workers:
        slabs = [(0, networks)]
        workers = 1
    else:
        if chunksize is None:
            chunksize = max(1, len(networks) // (workers * 4))
        slabs = [
            (i, networks[i:i + chunksize])
            for i in range(0, len(networks), chunksize)
        ]
    fn = partial(_vector_slab, policies=tuple(policies))
    rows: List[BatchResult] = []
    # Slabs are contiguous ascending index ranges and each slab emits
    # (index, policy)-ordered rows, so concatenation is already sorted.
    for slab_rows in pooled_imap(fn, slabs, workers=workers, chunksize=1):
        rows.extend(slab_rows)
    return rows


def analyse_many(
    networks: Sequence[Network],
    policies: Sequence[str] = DEFAULT_POLICIES,
    workers: Optional[int] = None,
    chunksize: Optional[int] = None,
    mode: Optional[str] = None,
) -> List[BatchResult]:
    """Analyse every (network, policy) pair.

    ``workers=None`` uses ``os.cpu_count()``; ``workers<=1`` (or a grid
    too small to amortise a pool) runs serial in-process.  ``mode``
    overrides the process-wide analysis mode for this call
    (``generic``/``fast``/``vectorized``); under ``vectorized`` the grid
    runs through the SoA batch kernels of :mod:`repro.perf.vector` —
    same results bit for bit, whole slabs per instruction stream.
    Results come back ordered by (network index, policy position)
    regardless of the execution mode.  Every network must carry a TTR at
    or above its ring latency — pre-filter rows that do not (as the
    sweep drivers do).
    """
    if mode is None:
        mode = analysis_mode()
    with analysis_mode_set(mode):
        networks = list(networks)
        if mode == "vectorized":
            return _analyse_many_vectorized(networks, policies, workers,
                                            chunksize)
        if workers is None:
            workers = os.cpu_count() or 1
        jobs = list(enumerate(networks))
        if len(jobs) < 2 * workers:
            workers = 1  # too small to amortise a pool
        rows: List[BatchResult] = []
        fn = partial(_analyse_pair, policies=tuple(policies))
        for pair_rows in pooled_imap(fn, jobs, workers=workers,
                                     chunksize=chunksize):
            rows.extend(pair_rows)
        return rows


def generate_networks(
    n: int,
    seed: Union[int, str] = 0,
    n_masters: int = 3,
    streams_per_master: int = 3,
    d_over_t: Tuple[float, float] = (0.15, 1.0),
    period_ms: Tuple[float, float] = (50.0, 1000.0),
    payload_range: Tuple[int, int] = (2, 16),
    ttr_fraction_of_tdel: float = 0.5,
) -> List[Network]:
    """``n`` reproducible random networks with a minimal-headroom TTR.

    One :class:`random.Random` threads through every draw, so the
    workload is a pure function of ``seed`` — equal seeds give
    value-equal networks (fresh instances each call: the instance-keyed
    analysis memos never leak between repetitions).  String seeds hash
    with SHA-512 inside :class:`random.Random`, stable across processes
    and ``PYTHONHASHSEED`` settings.
    """
    rng = Random(seed)
    nets = []
    for _ in range(n):
        net = random_network(
            n_masters=n_masters,
            streams_per_master=streams_per_master,
            d_over_t=d_over_t,
            period_ms=period_ms,
            payload_range=payload_range,
            rng=rng,
        )
        ttr = max(net.ring_latency(), int(tdel(net) * ttr_fraction_of_tdel))
        nets.append(net.with_ttr(ttr))
    return nets


def _point_seed(seed: int, tightness: float) -> str:
    """Per-point workload seed for :func:`acceptance_curve`.  ``repr``
    of a float round-trips exactly, so the encoding is injective — the
    old ``seed * 1_000_003 + int(x * 1000)`` mix collided for tightness
    levels agreeing to three decimals (0.2 vs 0.2004 on fine grids) and
    fed those points identical workloads."""
    return f"{seed}:{tightness!r}"


def acceptance_curve(
    tightness: Sequence[float],
    n_per_point: int,
    policies: Sequence[str] = DEFAULT_POLICIES,
    workers: Optional[int] = None,
    seed: int = 0,
    n_masters: int = 3,
    streams_per_master: int = 3,
    period_ms: Tuple[float, float] = (50.0, 1000.0),
    payload_range: Tuple[int, int] = (2, 16),
    mode: Optional[str] = None,
) -> Dict[float, Dict[str, int]]:
    """The E5 curve: schedulable counts per policy per tightness level.

    Deadlines are drawn in ``[0.6·x·T, x·T]`` at tightness ``x``; the
    per-point seed mixes ``seed`` so points are independent but
    reproducible.  All (level × network × policy) rows go through one
    :func:`analyse_many` call, so the pool is filled once; ``mode``
    selects its analysis mode (the acceptance workload is the benchmark
    the vectorized kernels are measured on).
    """
    nets: List[Network] = []
    spans: List[Tuple[float, int]] = []
    for x in tightness:
        batch = generate_networks(
            n_per_point,
            seed=_point_seed(seed, x),
            n_masters=n_masters,
            streams_per_master=streams_per_master,
            d_over_t=(x * 0.6, x),
            period_ms=period_ms,
            payload_range=payload_range,
        )
        spans.append((x, len(nets)))
        nets.extend(batch)

    rows = analyse_many(nets, policies, workers=workers, mode=mode)
    by_index: Dict[int, Dict[str, bool]] = {}
    for row in rows:
        by_index.setdefault(row.index, {})[row.policy] = row.schedulable

    curve: Dict[float, Dict[str, int]] = {}
    for (x, start) in spans:
        counts = {p: 0 for p in policies}
        for i in range(start, start + n_per_point):
            for p in policies:
                if by_index[i][p]:
                    counts[p] += 1
        curve[x] = counts
    return curve
