"""High-throughput analysis engine.

The schedulability questions of the paper all reduce to monotone
fixed-point iterations, and the experiment drivers evaluate thousands of
generated networks/tasksets.  This subpackage makes that layer fast
without changing a single reported number:

* :mod:`repro.perf.config` — a global fast-path switch so benchmarks and
  property tests can compare the specialised kernels against the generic
  exact path on identical inputs;
* :mod:`repro.perf.kernels` — monomorphic integer fixed-point kernels
  (all-``int`` tasksets take these automatically; results are
  bit-identical to the generic :func:`repro.core.timeops.fixed_point`
  path, property-tested in ``tests/test_perf_kernels.py``);
* :mod:`repro.perf.batch` — embarrassingly-parallel batch drivers: a
  reusable chunked process-pool map (``pooled_map``/``pooled_imap``,
  also the engine under the fuzzing campaigns' per-instance oracles)
  plus the analysis grid drivers (``analyse_many``,
  ``acceptance_curve``) built on it;
* :mod:`repro.perf.bench` — the ``bench`` CLI backend emitting
  machine-readable ``BENCH_*.json`` throughput artefacts.

Submodules are imported lazily: the core analyses import
``repro.perf.config`` for the fast-path switch, while ``batch``/``bench``
import the analyses — eager re-exports here would make that a cycle.
"""

from .config import fast_path_disabled, fast_path_enabled, set_fast_path

__all__ = [
    "BatchResult",
    "acceptance_curve",
    "analyse_many",
    "generate_networks",
    "pooled_imap",
    "pooled_map",
    "run_benchmark",
    "write_benchmark",
    "fast_path_disabled",
    "fast_path_enabled",
    "set_fast_path",
]

_LAZY = {
    "BatchResult": "batch",
    "acceptance_curve": "batch",
    "analyse_many": "batch",
    "generate_networks": "batch",
    "pooled_imap": "batch",
    "pooled_map": "batch",
    "run_benchmark": "bench",
    "write_benchmark": "bench",
}


def __getattr__(name):
    try:
        modname = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    return getattr(import_module(f".{modname}", __name__), name)
