"""Monomorphic integer fixed-point kernels.

Every recursion in :mod:`repro.core` is driven through the generic
:func:`repro.core.timeops.fixed_point`, which re-dispatches on the
``Number`` union (``_is_exact`` checks, ``Fraction`` promotion,
``almost_equal``) at every step.  When a task set is all-``int`` — the
recommended representation, and the only one the PROFIBUS analyses ever
produce — none of that is needed: ceilings are one integer division and
convergence is plain ``==``.

The kernels are exact mirrors of their generic counterparts:

* same iteration maps, same seeds wherever the non-converged overshoot
  value is observable, same limit semantics — so the *values* produced
  are bit-identical to the generic path (property-tested over thousands
  of random task sets in ``tests/test_perf_kernels.py``);
* ``(C, T, J)`` triples are pulled out of the :class:`Task` objects once
  per call instead of once per step;
* the deadline-bounded EDF interference caps (which do not depend on the
  iterate) are evaluated once per offset instead of once per step;
* where the caller discards the non-converged value (the RTA start-time
  recursions), iteration starts from the standard utilisation-based
  lower bound on the least fixed point, skipping the early iterates.

Only iteration *counts* may differ (they are reported, not part of any
analysis verdict): a seed jump reaches the same fixed point in fewer
steps.
"""

from __future__ import annotations

from bisect import bisect_right
from math import gcd
from typing import List, Optional, Sequence, Tuple

from ..core.timeops import DivergedError
from .stats import counters as _counters

MAX_ITER = 1_000_000

#: One interfering task, reduced to the three integers the maps read.
CTJ = Tuple[int, int, int]


def ctj(tasks) -> Tuple[CTJ, ...]:
    """Extract ``(C, T, J)`` triples once for a kernel call."""
    return tuple((t.C, t.T, t.J) for t in tasks)


def seed_params(hp: Sequence[CTJ]) -> Optional[Tuple[int, int, int, int]]:
    """Precompute the utilisation-based lower bound on the least fixed
    point of ``x = base + Σ ⌈(x+Jⱼ)/Tⱼ⌉·Cⱼ`` (and of the strict
    ``⌊·⌋+1`` variant, whose map dominates the ceiling one).

    Any fixed point satisfies ``x ≥ base + Σ (x+Jⱼ)·Cⱼ/Tⱼ``, hence
    ``x ≥ (base + Σ CⱼJⱼ/Tⱼ) / (1 − U)`` for ``U < 1``.  With
    ``Σ CⱼJⱼ/Tⱼ = P/Q`` and ``U = A/B`` this is
    ``x ≥ (base·Q + P)·B / (Q·(B − A))`` — returned as
    ``(P, Q, B, Q·(B−A))`` so per-``base`` evaluation is two integer
    multiplications and a ceiling division, exact by construction.
    ``None`` when the bound is unavailable (no interferers or ``U ≥ 1``).
    """
    if not hp:
        return None
    # Accumulate P/Q = Σ CⱼJⱼ/Tⱼ and A/B = Σ Cⱼ/Tⱼ with explicit gcd
    # reduction — exact like Fraction, without its per-op overhead.
    p, q = 0, 1
    a, b = 0, 1
    for C, T, J in hp:
        if J:
            p, q = p * T + C * J * q, q * T
            g = gcd(p, q)
            if g > 1:
                p //= g
                q //= g
        a, b = a * T + C * b, b * T
        g = gcd(a, b)
        if g > 1:
            a //= g
            b //= g
    if a >= b:
        return None
    return (p, q, b, q * (b - a))


def seed_from(
    params: Optional[Tuple[int, int, int, int]], base: int, floor_seed: int
) -> int:
    """Evaluate the :func:`seed_params` bound at ``base``; never below
    ``floor_seed`` and never above the least fixed point."""
    if params is None:
        return floor_seed
    p, q, b, d = params
    bound = -((-(base * q + p) * b) // d)
    return bound if bound > floor_seed else floor_seed


def utilization_seed(base: int, hp: Sequence[CTJ], floor_seed: int) -> int:
    """One-shot :func:`seed_params` + :func:`seed_from`."""
    return seed_from(seed_params(hp), base, floor_seed)


def _iterate(
    base: int,
    hp: Sequence[CTJ],
    x: int,
    limit: Optional[int],
    strict: bool,
    max_iter: int = MAX_ITER,
) -> Tuple[int, int, bool]:
    """Iterate ``x ← base + Σ k(x)·Cⱼ`` with ``k = ⌊(x+J)/T⌋+1`` when
    ``strict`` else ``k = ⌈(x+J)/T⌉``.  Same convergence/limit contract
    as :func:`repro.core.timeops.fixed_point` (the maps are monotone by
    construction, so the decrease guard is unnecessary here)."""
    for it in range(1, max_iter + 1):
        total = base
        if strict:
            for C, T, J in hp:
                total += ((x + J) // T + 1) * C
        else:
            for C, T, J in hp:
                total += -((-x - J) // T) * C
        if total == x:
            _counters.fast += it
            return total, it, True
        if limit is not None and total > limit:
            _counters.fast += it
            return total, it, False
        x = total
    raise DivergedError(
        f"fixed-point iteration did not settle after {max_iter} iterations",
        x,
    )


def busy_period(entries: Sequence[CTJ], blocking: int = 0,
                max_iter: int = MAX_ITER) -> int:
    """Synchronous busy period over all-int ``(C, T, J)`` entries.

    Mirrors the :func:`repro.core.busy_period.synchronous_busy_period`
    iteration and seed (the utilisation guards stay in the caller).
    """
    start = blocking
    for C, _T, _J in entries:
        start += C
    value, _its, _conv = _iterate(blocking, entries, start, None, False,
                                  max_iter)
    return value


def rta_preemptive(
    C: int, hp: Sequence[CTJ], limit: int
) -> Tuple[int, int, bool]:
    """Joseph–Pandya recursion ``r = C + Σ ⌈(r+Jⱼ)/Tⱼ⌉·Cⱼ`` from the
    utilisation-jumped seed.

    Returns ``(value, iterations, converged)`` with the same
    ``converged`` verdict as the generic climb from ``C``: a jumped
    iteration converging beyond ``limit`` is reported unconverged,
    which is what the generic path would have concluded on the way up
    (its non-converged overshoot value is discarded by the caller).
    """
    seed = utilization_seed(C, hp, C)
    value, its, converged = _iterate(C, hp, seed, limit, False)
    if converged and seed > C and value > limit:
        return value, its, False
    return value, its, converged


_AUTO_PARAMS = object()


def np_start(
    B: int,
    hp: Sequence[CTJ],
    strict: bool,
    limit: int,
    step0: int,
    params=_AUTO_PARAMS,
) -> Tuple[int, int, bool]:
    """Eq. (1) inner recursion ``w = B + Σ k(w)·Cⱼ``.

    ``step0`` is the generic seed (one application of the map to 0); the
    kernel may jump above it via the utilisation bound (``params`` from
    :func:`seed_params`, computed here when omitted — pass ``None`` for
    "no bound available"), reporting unconverged for jumped solutions
    beyond ``limit`` exactly as the generic climb would (the caller
    discards the value either way)."""
    if params is _AUTO_PARAMS:
        params = seed_params(hp)
    seed = seed_from(params, B, step0)
    value, its, converged = _iterate(B, hp, seed, limit, strict)
    if converged and seed > step0 and value > limit:
        return value, its, False
    return value, its, converged


def np_step0(B: int, hp: Sequence[CTJ], strict: bool) -> int:
    """One application of the eq. (1) map to ``w = 0`` (the generic seed)."""
    total = B
    if strict:
        for C, T, J in hp:
            total += (J // T + 1) * C
    else:
        for C, T, J in hp:
            total += -((-J) // T) * C
    return total


# --------------------------------------------------------------------- EDF
#
# The eq. (6)-(10) offset scans re-derive, at every offset ``a`` and
# every iterate, which tasks are in scope (``D_j <= a + D_i``), the
# deadline-bounded interference caps, and the blocking maximum.  The
# profile below sorts the interference set by deadline once per
# (taskset, task) pair and precomputes blocking suffix-maxima, so each
# offset reduces to a prefix slice, one bisect, and a tight min/sum loop.


class EdfProfile:
    """Offset-invariant data for one (taskset, task) EDF scan.

    The deadline-sorted interference entries and the blocking
    suffix-maxima depend only on the task *set*, so they are built once
    and memoised in the set's cache; each task view just drops itself
    from the shared entries (identity match, like the generic scan).
    """

    __slots__ = ("others", "block_ds", "block_suffix")

    def __init__(self, taskset, task, subtract_one: bool):
        shared_key = ("edf_profile", subtract_one)
        shared = taskset._cache.get(shared_key)
        if shared is None:
            # Interference entries sorted by deadline so the
            # ``D_j <= a + D_i`` scope is a prefix; ties in the sort key
            # are interchangeable (identical contributions).
            entries = sorted(
                ((j.D, j.C, j.T, j.J), id(j)) for j in taskset
            )
            # Blocking scans all tasks with D_j > threshold, mirroring
            # blocking_from(taskset-filtered) incl. its max(…, 0) floor.
            block_ds = [e[0][0] for e in entries]
            suffix = [0] * (len(entries) + 1)
            best = None
            for i in range(len(entries) - 1, -1, -1):
                _d, c, _t, _j = entries[i][0]
                if subtract_one:
                    c -= 1
                best = c if best is None or c > best else best
                suffix[i] = best
            shared = (entries, block_ds, suffix)
            taskset._cache[shared_key] = shared
        entries, self.block_ds, self.block_suffix = shared
        me = id(task)
        self.others: List[Tuple[int, int, int, int]] = [
            e for e, i in entries if i != me
        ]

    def blocking_at(self, threshold: int) -> int:
        """``max{c_eff : D_j > threshold}`` floored at 0; 0 when empty."""
        i = bisect_right(self.block_ds, threshold)
        if i == len(self.block_ds):
            return 0
        best = self.block_suffix[i]
        return best if best > 0 else 0

    def in_scope(self, deadline: int) -> List[Tuple[int, int, int, int]]:
        """``(C, T, J, cap)`` per task with ``D_j <= deadline``, with the
        deadline-bounded term ``cap = 1 + ⌊(dl − D_j + J_j)/T_j⌋``
        evaluated once (it does not depend on the iterate)."""
        out = []
        for D, C, T, J in self.others:
            if D > deadline:
                break
            out.append((C, T, J, 1 + (deadline - D + J) // T))
        return out


def edf_np_response_at(
    task_C: int,
    own: int,
    B: int,
    interferers: Sequence[Tuple[int, int, int, int]],
    a: int,
    limit: int,
) -> int:
    """Eq. (9) at one offset: iterate
    ``L ← B + own + Σ min(1+⌊(L+J)/T⌋, cap)·C`` from the generic seed
    (one application of the map to 0).  Returns ``r(a)`` exactly as the
    generic path does — including the overshoot value when the iteration
    escapes ``limit``."""
    base = B + own
    x = base
    for C, T, J, cap in interferers:
        by_time = 1 + J // T
        x += (by_time if by_time < cap else cap) * C
    for it in range(1, MAX_ITER + 1):
        total = base
        for C, T, J, cap in interferers:
            by_time = 1 + (x + J) // T
            total += (by_time if by_time < cap else cap) * C
        if total == x:
            break
        x = total
        if total > limit:
            break
    else:
        raise DivergedError(
            f"fixed-point iteration did not settle after {MAX_ITER} iterations",
            x,
        )
    _counters.fast += it
    r = task_C + x - a
    return r if r > task_C else task_C


def candidate_offsets(specs: Sequence[Tuple[int, int, int]], D_i: int,
                      horizon: int) -> List[int]:
    """Array mirror of :func:`repro.core.edf_rta._candidate_offsets`:
    the eq. (8)/(10) scan set over ``(T, D, J)`` stream specs."""
    points = {0}
    for T, D, J in specs:
        base = D - D_i
        k = 0
        while True:
            a = base + k * T
            if a > horizon:
                break
            if a >= 0:
                points.add(a)
            if J:
                aj = a - J
                if 0 <= aj <= horizon:
                    points.add(aj)
            k += 1
    return sorted(points)


def dm_master_response_times(
    specs: Sequence[Tuple[int, int, int]], tc: int,
    max_instances: int = 100_000,
) -> List[Optional[int]]:
    """Eq. (16) for one master, entirely over integer arrays.

    ``specs`` holds ``(T, D, J)`` per high-priority stream in declaration
    order; every message costs one token cycle (``C = tc``).  Returns
    the worst-case response per stream (``None`` = unschedulable),
    bit-identical to DM-assigning a token task set and running
    :func:`repro.core.rta_fixed.nonpreemptive_response_time` on it —
    including the float utilisation guards, evaluated in the same
    summation order the TaskSet path uses.
    """
    n = len(specs)
    order = sorted(range(n), key=lambda i: (specs[i][1], i))
    prio = [0] * n
    for p, i in enumerate(order):
        prio[i] = p
    # lint: disable=REP001 — utilisation guard seam: mirrors the generic
    # path's float U-test bit-for-bit; verdicts stay integer
    utils = [tc / specs[i][0] for i in range(n)]
    out: List[Optional[int]] = [None] * n
    # Walking in priority-rank order makes every per-task input an
    # extension of the previous one: the interference array is a prefix
    # of the rank-ordered (C, T, J) list, and the seed-bound rationals
    # and zero-step sum accumulate one entry per rank.
    arr_full = [(tc, specs[i][0], specs[i][2]) for i in order]
    p_, q_ = 0, 1  # Σ CⱼJⱼ/Tⱼ as P/Q
    a_, b_ = 0, 1  # Σ Cⱼ/Tⱼ as A/B
    step0_tail = 0  # Σ (⌊J/T⌋ + 1)·C over hp (strict zero-step)
    last_rank = n - 1
    for rank, i in enumerate(order):
        T, D, J = specs[i]
        # Priorities are the distinct ranks 0..n-1, so "some task has
        # lower priority" is exactly "not the last rank".
        B = tc if rank < last_rank else 0
        # Float guard in the same summation order as the TaskSet path
        # (hp in declaration order, probed task last).
        u = 0.0  # lint: disable=REP001 — utilisation guard seam
        pi = prio[i]
        for j in range(n):
            if prio[j] < pi:
                u += utils[j]
        u += utils[i]
        arr = arr_full[:rank]
        params = (p_, q_, b_, q_ * (b_ - a_)) if a_ < b_ and rank else None
        # lint: disable=REP001 — utilisation guard seam (same epsilons
        # as repro.core.utilization; the guard only gates, never rounds
        # a response value)
        if not (u > 1.0 + 1e-12 or (B > 0 and u > 1.0 - 1e-12)):
            L = busy_period(arr + [(tc, T, J)], B)
            n_inst = -((-(L + J)) // T)
            if n_inst <= max_instances:
                worst = 0
                feasible = True
                for q in range(n_inst if n_inst > 1 else 1):
                    Bq = B + q * tc
                    limit_q = q * T + D + J - tc
                    w, _its, converged = np_start(
                        Bq, arr, True, limit_q, Bq + step0_tail, params
                    )
                    if not converged:
                        feasible = False
                        break
                    r = w + tc - q * T
                    if r > worst:
                        worst = r
                    if r + J > D:
                        feasible = False
                        break
                if feasible:
                    out[i] = worst + J
        # Extend the accumulators with this rank's entry for the next.
        if J:
            p_, q_ = p_ * T + tc * J * q_, q_ * T
            g = gcd(p_, q_)
            if g > 1:
                p_ //= g
                q_ //= g
        a_, b_ = a_ * T + tc * b_, b_ * T
        g = gcd(a_, b_)
        if g > 1:
            a_ //= g
            b_ //= g
        step0_tail += (J // T + 1) * tc
    return out


def edf_master_response_times(
    specs: Sequence[Tuple[int, int, int]], tc: int,
    limit_factor: int = 4,
) -> List[Tuple[Optional[int], Optional[int]]]:
    """Eqs. (17)–(18) for one master, entirely over integer arrays.

    Mirrors :func:`repro.core.edf_rta.edf_response_time` with
    ``preemptive=False, blocking_subtract_one=False`` on the staged
    ``C = tc`` token task set.  Returns ``(R, critical_a)`` per stream
    in declaration order (``R = None`` when utilisation exceeds 1).
    """
    n = len(specs)
    utils = 0.0  # lint: disable=REP001 — utilisation guard seam
    for T, _D, _J in specs:
        utils += tc / T  # lint: disable=REP001 — utilisation guard seam
    # lint: disable=REP001 — utilisation guard seam (same epsilons as
    # the generic path; gates only, never rounds a response value)
    if utils > 1.0 + 1e-12:
        return [(None, None)] * n
    entries_j = tuple((tc, T, J) for T, _D, J in specs)
    # b_seed = blocking_from(all tasks, subtract_one=False) = tc (> 0).
    if utils > 1.0 - 1e-12:  # lint: disable=REP001 — utilisation guard seam
        # U == 1: blocking-seeded busy period never drains; scan one
        # hyperperiod past the plain busy period (mirrors the generic
        # branch, hyperperiod = lcm of the integer periods).
        L0 = busy_period(entries_j, 0)
        H = 1
        for T, _D, _J in specs:
            H = H * T // gcd(H, T)
        L = L0 + H + max(D for _T, D, _J in specs)
    else:
        L = busy_period(entries_j, tc)
    max_d = max(D for _T, D, _J in specs)
    sorted_entries = sorted(
        ((D, tc, T, J), i) for i, (T, D, J) in enumerate(specs)
    )
    out: List[Tuple[Optional[int], Optional[int]]] = []
    for i in range(n):
        T, D, J = specs[i]
        limit = limit_factor * (L + D + J) + tc
        others = [e for e, idx in sorted_entries if idx != i]
        best = 0
        best_a = 0
        for a in candidate_offsets(specs, D, L):
            dl = a + D
            scope = []
            for Dj, Cj, Tj, Jj in others:
                if Dj > dl:
                    break
                scope.append((Cj, Tj, Jj, 1 + (dl - Dj + Jj) // Tj))
            B = tc if max_d > dl else 0
            own = ((a + J) // T) * tc
            r = edf_np_response_at(tc, own, B, scope, a, limit)
            if r > best:
                best, best_a = r, a
        out.append((best, best_a))
    return out


def edf_p_response_at(
    task_C: int,
    own: int,
    interferers: Sequence[Tuple[int, int, int, int]],
    a: int,
    limit: int,
) -> int:
    """Eq. (6) at one offset: iterate
    ``L ← own + Σ min(⌈(L+J)/T⌉ if L>0 else 0, cap)·C`` from ``own``."""
    x = own
    for it in range(1, MAX_ITER + 1):
        total = own
        if x > 0:
            for C, T, J, cap in interferers:
                by_time = -((-x - J) // T)
                total += (by_time if by_time < cap else cap) * C
        if total == x:
            _counters.fast += it
            r = x - a
            return r if r > task_C else task_C
        if total > limit:
            _counters.fast += it
            r = total - a
            return r if r > task_C else task_C
        x = total
    raise DivergedError(
        f"fixed-point iteration did not settle after {MAX_ITER} iterations",
        x,
    )
