"""Throughput benchmark driver — the ``repro-cli bench`` backend.

Measures the same workload once per analysis mode on one machine:

* ``generic_serial`` — the exact generic path (fast kernels disabled),
  the baseline every speedup is quoted against;
* ``fast_serial`` — integer kernels + interference caching, one process;
* ``vectorized_serial`` — the structure-of-arrays batch kernels
  (:mod:`repro.perf.vector`): the whole workload packed once and every
  fixed-point recurrence advanced across all networks per instruction
  stream.  The ``vector_backend`` field records whether numpy carried
  the arrays or the pure-python fallback did;
* ``fast_parallel`` / ``vectorized_parallel`` — the same through
  :func:`repro.perf.batch.analyse_many` with a process pool (skipped
  when only one worker is requested — that would measure pool overhead,
  not parallelism).

Workloads are regenerated (same seed → value-equal, fresh instances)
for every timed run, so the instance-keyed analysis memos never carry
results across modes or rounds; generation time is excluded from every
measurement.  Results go to a machine-readable ``BENCH_*.json``
artefact (schema documented in PERF.md) so perf trajectories can be
compared across commits.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

from . import vector
from .batch import DEFAULT_POLICIES, BatchResult, analyse_many, generate_networks
from .config import ANALYSIS_MODES
from .stats import counters
from ..schemas import BENCH_SCHEMA as SCHEMA

#: Deadline-tightness levels cycled across the generated networks so the
#: workload spans the easy/marginal/infeasible regimes like the E5 curve.
TIGHTNESS_CYCLE = (1.0, 0.5, 0.3, 0.2, 0.12)


def _workload(n_networks: int, seed: int):
    """The bench workload: ``n`` networks cycling through the tightness
    levels, minimal-headroom TTR, reproducible from ``seed``."""
    per_level = -(-n_networks // len(TIGHTNESS_CYCLE))
    nets = []
    for li, x in enumerate(TIGHTNESS_CYCLE):
        nets.extend(
            generate_networks(
                per_level,
                seed=seed * 7_654_321 + li,
                d_over_t=(x * 0.6, x),
            )
        )
    return nets[:n_networks]


class _ModeRun:
    """Best-of-rounds timings for one mode."""

    __slots__ = ("wall", "cpu", "iterations", "rows")

    def __init__(self) -> None:
        self.wall = float("inf")
        self.cpu = float("inf")
        self.iterations = 0
        self.rows: List[BatchResult] = []

    def observe(self, wall: float, cpu: float, iterations: int,
                rows: List[BatchResult]) -> None:
        if wall < self.wall:
            self.wall = wall
        if cpu < self.cpu:
            self.cpu = cpu
            self.iterations = iterations
            self.rows = rows


def _run_once(n_networks: int, seed: int, policies: Sequence[str],
              workers: int, mode: str, into: _ModeRun) -> None:
    nets = _workload(n_networks, seed)  # fresh instances, cold memos
    counters.reset()
    w0, c0 = time.perf_counter(), time.process_time()
    rows = analyse_many(nets, policies, workers=workers, mode=mode)
    wall, cpu = time.perf_counter() - w0, time.process_time() - c0
    into.observe(wall, cpu,
                 counters.fast + counters.generic + counters.vectorized,
                 rows)


def run_benchmark(
    n_networks: int = 500,
    workers: Optional[int] = None,
    seed: int = 0,
    rounds: int = 3,
    policies: Sequence[str] = DEFAULT_POLICIES,
    check: bool = True,
    modes: Optional[Tuple[str, ...]] = None,
) -> dict:
    """Run the modes and assemble the ``BENCH_batch.json`` payload.

    ``modes`` restricts the benchmark to a subset of
    :data:`repro.perf.config.ANALYSIS_MODES` (default: all three).
    Rounds are interleaved across modes so transient machine load hits
    every mode equally; the per-mode best is reported.  ``cpu_seconds``
    (process CPU time) drives the speedup ratios — on a multi-tenant
    machine wall clock charges one mode for another tenant's burst.
    For the parallel modes CPU time is meaningless in the parent (the
    work happens in children), so their ratios use wall time.
    """
    if n_networks < 1:
        raise ValueError("bench needs at least one network")
    selected = tuple(modes) if modes else ANALYSIS_MODES
    bad = [m for m in selected if m not in ANALYSIS_MODES]
    if bad:
        raise ValueError(
            f"unknown bench mode(s) {bad}; pick from {list(ANALYSIS_MODES)}"
        )
    if workers is None:
        workers = os.cpu_count() or 1
    n_analyses = n_networks * len(policies)

    serial: Dict[str, _ModeRun] = {m: _ModeRun() for m in selected}
    # Pool rows only for the modes with a batch driver worth scaling out
    # (generic-parallel would just burn `rounds` pool runs to restate
    # the serial ratio).
    pooled: Dict[str, Optional[_ModeRun]] = {
        m: (_ModeRun() if workers > 1 else None)
        for m in selected if m in ("fast", "vectorized")
    }
    for _ in range(max(1, rounds)):
        for m in selected:
            _run_once(n_networks, seed, policies, 1, m, serial[m])
        for m, run in pooled.items():
            if run is not None:
                _run_once(n_networks, seed, policies, workers, m, run)

    consistent: Optional[bool] = None  # None = equality check skipped
    if check:
        row_sets = [run.rows for run in serial.values()]
        row_sets += [run.rows for run in pooled.values() if run is not None]
        if len(row_sets) > 1:
            consistent = all(rows == row_sets[0] for rows in row_sets[1:])

    def _mode(run: _ModeRun, wall_ratio: bool):
        out = {
            "seconds": run.wall,
            "cpu_seconds": run.cpu,
            "analyses_per_sec": n_analyses / run.wall,
            "analyses_per_cpu_sec": n_analyses / run.cpu,
            "iterations": run.iterations,
        }

        def ratio(base: _ModeRun) -> float:
            return base.wall / run.wall if wall_ratio else base.cpu / run.cpu

        if "generic" in serial and run is not serial["generic"]:
            out["speedup_vs_generic"] = ratio(serial["generic"])
        if "fast" in serial and run not in (serial["fast"], serial.get("generic")):
            out["speedup_vs_fast"] = ratio(serial["fast"])
        return out

    mode_rows: Dict[str, dict] = {}
    for m in ("generic", "fast", "vectorized"):
        if m in serial:
            mode_rows[f"{m}_serial"] = _mode(serial[m], False)
    for m, run in pooled.items():
        if run is not None:
            mode_rows[f"{m}_parallel"] = dict(_mode(run, True),
                                              workers=workers)
        else:
            # One worker: the parallel driver degenerates to the serial one.
            mode_rows[f"{m}_parallel"] = dict(mode_rows[f"{m}_serial"],
                                              workers=1)

    sample = next(iter(serial.values()))
    schedulable = sum(1 for r in sample.rows if r.schedulable)
    return {
        "schema": SCHEMA,
        "created_unix": time.time(),
        "machine": {
            "cpu_count": os.cpu_count(),
            "python": sys.version.split()[0],
            "platform": sys.platform,
            "numpy": vector.numpy_version(),  # None = unavailable
            "vector_backend": vector.backend_name(),
        },
        "workload": {
            "networks": n_networks,
            "policies": list(policies),
            "analyses": n_analyses,
            "seed": seed,
            "rounds": rounds,
            "tightness_cycle": list(TIGHTNESS_CYCLE),
            "schedulable_rows": schedulable,
        },
        "modes": mode_rows,
        "consistent": consistent,
    }


def write_benchmark(report: dict, path: str) -> str:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return path


def format_report(report: dict) -> List[str]:
    """Human-readable summary lines for the CLI."""
    wl = report["workload"]
    machine = report.get("machine", {})
    backend = machine.get("vector_backend")
    numpy_note = (f"numpy {machine['numpy']}" if machine.get("numpy")
                  else "no numpy")
    lines = [
        f"bench: {wl['networks']} networks × {len(wl['policies'])} policies "
        f"= {wl['analyses']} analyses (best of {wl['rounds']} rounds, "
        f"seed {wl['seed']}; vector backend: {backend}, {numpy_note})",
    ]
    for name, mode in report["modes"].items():
        speed = mode["analyses_per_sec"]
        extra = ""
        if "speedup_vs_generic" in mode:
            extra = f"  ({mode['speedup_vs_generic']:.2f}x vs generic"
            if "speedup_vs_fast" in mode:
                extra += f", {mode['speedup_vs_fast']:.2f}x vs fast"
            extra += ")"
        if "workers" in mode:
            extra += f"  [workers={mode['workers']}]"
        lines.append(
            f"  {name:<19} {speed:>10.0f} analyses/s  "
            f"{mode['iterations']:>9} iterations{extra}"
        )
    consistent = report["consistent"]
    verdict = ("not checked" if consistent is None
               else "ok" if consistent else "MISMATCH")
    lines.append(f"cross-mode result agreement: {verdict}")
    return lines
