"""Throughput benchmark driver — the ``repro-cli bench`` backend.

Measures the same workload three ways on one machine:

* ``generic_serial`` — the exact generic path (fast kernels disabled),
  the baseline every speedup is quoted against;
* ``fast_serial`` — integer kernels + interference caching, one process;
* ``fast_parallel`` — the same through :func:`repro.perf.batch
  .analyse_many` with a process pool (skipped when only one worker is
  requested — it would measure pool overhead, not parallelism).

Workloads are regenerated (same seed → value-equal, fresh instances)
for every timed run, so the instance-keyed analysis memos never carry
results across modes or rounds; generation time is excluded from every
measurement.  Results go to a machine-readable ``BENCH_*.json``
artefact (schema documented in PERF.md) so perf trajectories can be
compared across commits.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

from .batch import DEFAULT_POLICIES, BatchResult, analyse_many, generate_networks
from .config import fast_path_disabled
from .stats import counters

SCHEMA = "profibus-rt/bench-batch/v1"

#: Deadline-tightness levels cycled across the generated networks so the
#: workload spans the easy/marginal/infeasible regimes like the E5 curve.
TIGHTNESS_CYCLE = (1.0, 0.5, 0.3, 0.2, 0.12)


def _workload(n_networks: int, seed: int):
    """The bench workload: ``n`` networks cycling through the tightness
    levels, minimal-headroom TTR, reproducible from ``seed``."""
    per_level = -(-n_networks // len(TIGHTNESS_CYCLE))
    nets = []
    for li, x in enumerate(TIGHTNESS_CYCLE):
        nets.extend(
            generate_networks(
                per_level,
                seed=seed * 7_654_321 + li,
                d_over_t=(x * 0.6, x),
            )
        )
    return nets[:n_networks]


class _ModeRun:
    """Best-of-rounds timings for one mode."""

    __slots__ = ("wall", "cpu", "iterations", "rows")

    def __init__(self) -> None:
        self.wall = float("inf")
        self.cpu = float("inf")
        self.iterations = 0
        self.rows: List[BatchResult] = []

    def observe(self, wall: float, cpu: float, iterations: int,
                rows: List[BatchResult]) -> None:
        if wall < self.wall:
            self.wall = wall
        if cpu < self.cpu:
            self.cpu = cpu
            self.iterations = iterations
            self.rows = rows


def _run_once(n_networks: int, seed: int, policies: Sequence[str],
              workers: int, fast: bool, into: _ModeRun) -> None:
    nets = _workload(n_networks, seed)  # fresh instances, cold memos
    counters.reset()
    if fast:
        w0, c0 = time.perf_counter(), time.process_time()
        rows = analyse_many(nets, policies, workers=workers)
        wall, cpu = time.perf_counter() - w0, time.process_time() - c0
    else:
        with fast_path_disabled():
            w0, c0 = time.perf_counter(), time.process_time()
            rows = analyse_many(nets, policies, workers=workers)
            wall, cpu = time.perf_counter() - w0, time.process_time() - c0
    into.observe(wall, cpu, counters.fast + counters.generic, rows)


def run_benchmark(
    n_networks: int = 500,
    workers: Optional[int] = None,
    seed: int = 0,
    rounds: int = 3,
    policies: Sequence[str] = DEFAULT_POLICIES,
    check: bool = True,
) -> dict:
    """Run the modes and assemble the ``BENCH_batch.json`` payload.

    Rounds are interleaved across modes so transient machine load hits
    every mode equally; the per-mode best is reported.  ``cpu_seconds``
    (process CPU time) drives the speedup ratios — on a multi-tenant
    machine wall clock charges one mode for another tenant's burst.
    For the parallel mode CPU time is meaningless in the parent (the
    work happens in children), so its ratios use wall time.
    """
    if n_networks < 1:
        raise ValueError("bench needs at least one network")
    if workers is None:
        workers = os.cpu_count() or 1
    n_analyses = n_networks * len(policies)

    generic = _ModeRun()
    fast = _ModeRun()
    parallel = _ModeRun() if workers > 1 else None
    for _ in range(max(1, rounds)):
        _run_once(n_networks, seed, policies, 1, False, generic)
        _run_once(n_networks, seed, policies, 1, True, fast)
        if parallel is not None:
            _run_once(n_networks, seed, policies, workers, True, parallel)

    consistent: Optional[bool] = None  # None = equality check skipped
    if check:
        consistent = generic.rows == fast.rows
        if parallel is not None:
            consistent = consistent and parallel.rows == fast.rows

    def _mode(run: _ModeRun, base: Optional[_ModeRun], wall_ratio: bool):
        out = {
            "seconds": run.wall,
            "cpu_seconds": run.cpu,
            "analyses_per_sec": n_analyses / run.wall,
            "analyses_per_cpu_sec": n_analyses / run.cpu,
            "iterations": run.iterations,
        }
        if base is not None:
            if wall_ratio:
                out["speedup_vs_generic"] = base.wall / run.wall
            else:
                out["speedup_vs_generic"] = base.cpu / run.cpu
        return out

    modes: Dict[str, dict] = {
        "generic_serial": _mode(generic, None, False),
        "fast_serial": _mode(fast, generic, False),
    }
    if parallel is not None:
        modes["fast_parallel"] = dict(
            _mode(parallel, generic, True), workers=workers
        )
    else:
        # One worker: the parallel driver degenerates to the serial one.
        modes["fast_parallel"] = dict(modes["fast_serial"], workers=1)

    schedulable = sum(1 for r in fast.rows if r.schedulable)
    return {
        "schema": SCHEMA,
        "created_unix": time.time(),
        "machine": {
            "cpu_count": os.cpu_count(),
            "python": sys.version.split()[0],
            "platform": sys.platform,
        },
        "workload": {
            "networks": n_networks,
            "policies": list(policies),
            "analyses": n_analyses,
            "seed": seed,
            "rounds": rounds,
            "tightness_cycle": list(TIGHTNESS_CYCLE),
            "schedulable_rows": schedulable,
        },
        "modes": modes,
        "consistent": consistent,
    }


def write_benchmark(report: dict, path: str) -> str:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return path


def format_report(report: dict) -> List[str]:
    """Human-readable summary lines for the CLI."""
    wl = report["workload"]
    lines = [
        f"bench: {wl['networks']} networks × {len(wl['policies'])} policies "
        f"= {wl['analyses']} analyses (best of {wl['rounds']} rounds, "
        f"seed {wl['seed']})",
    ]
    for name, mode in report["modes"].items():
        speed = mode["analyses_per_sec"]
        extra = ""
        if "speedup_vs_generic" in mode:
            extra = f"  ({mode['speedup_vs_generic']:.2f}x vs generic)"
        if "workers" in mode:
            extra += f"  [workers={mode['workers']}]"
        lines.append(
            f"  {name:<15} {speed:>10.0f} analyses/s  "
            f"{mode['iterations']:>9} iterations{extra}"
        )
    consistent = report["consistent"]
    verdict = ("not checked" if consistent is None
               else "ok" if consistent else "MISMATCH")
    lines.append(f"fast/generic result agreement: {verdict}")
    return lines
