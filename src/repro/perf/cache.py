"""Value-keyed shared result cache.

The PR 2 interference memos are *instance-keyed* on purpose: inside one
process a sweep re-analyses the same immutable master objects thousands
of times, while benchmark baselines on freshly generated but value-equal
networks must not get accidental hits.  That design has a deliberate
blind spot: two value-equal networks built from two different requests
never share anything.  At service traffic — many clients posting the
same plant document, near-duplicate admission probes, repeated sweep
rows — that blind spot *is* the workload.

:class:`ResultCache` closes it one layer up.  It memoises **finished
analysis results** under a value key derived from the canonical network
fingerprint (:func:`repro.profibus.serialization.network_fingerprint`)
plus the analysis coordinates (operation, policy, TTR override, grid,
…), so identical and repeated requests hit instead of recompute, no
matter which client or process parsed the document.  The instance-keyed
memos keep doing their job *within* a single computation; this cache
decides whether that computation runs at all.

Properties:

* **LRU, bounded.**  ``capacity`` entries; inserting past it evicts the
  least recently used (an unbounded dict would grow with every distinct
  network a resident daemon ever sees).
* **Counted.**  ``hits`` / ``misses`` / ``evictions`` counters and a
  :meth:`snapshot` dict — surfaced verbatim in the service's session
  statistics, asserted by the service tests.
* **Thread-safe.**  One lock around the ordered dict: the asyncio server
  runs computations on executor threads, and sync clients embed the
  cache in multi-threaded scripts.

Benchmarks and differential oracles (bench, fuzz, corpus check) never
consult a ``ResultCache`` — their whole point is recomputation — so the
honesty argument from PERF.md §2 is preserved: caching is opt-in at the
:mod:`repro.api` boundary, not ambient in the analysis layer.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, Hashable, Optional, Tuple

DEFAULT_CAPACITY = 4096


class ResultCache:
    """A bounded, counted, thread-safe LRU map from value keys to
    finished results."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def get(self, key: Hashable) -> Tuple[bool, Any]:
        """``(hit, value)`` — a tuple, because ``None`` is a legal
        cached value (e.g. an infeasible max-TTR)."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self.hits += 1
                return True, self._data[key]
            self.misses += 1
            return False, None

    def put(self, key: Hashable, value: Any) -> None:
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self._data[key] = value
                return
            self._data[key] = value
            if len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self.evictions += 1

    def get_or_compute(self, key: Hashable,
                       compute: Callable[[], Any]) -> Tuple[bool, Any]:
        """``(hit, value)``; on a miss, ``compute()`` runs *outside* the
        lock (analyses take milliseconds to seconds — holding the lock
        would serialise every concurrent client on one computation) and
        the result is stored.  Two racing misses on the same key both
        compute; results are deterministic, so last-write-wins is safe.
        """
        hit, value = self.get(key)
        if hit:
            return True, value
        value = compute()
        self.put(key, value)
        return False, value

    def clear(self) -> None:
        """Drop entries; counters survive (they describe the session)."""
        with self._lock:
            self._data.clear()

    def snapshot(self) -> Dict[str, int]:
        """Counters + occupancy, in the shape the service's session
        statistics embed (``cache`` block of the ``stats`` op)."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "size": len(self._data),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
