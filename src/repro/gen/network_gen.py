"""Random PROFIBUS scenario generation for the E3/E5 benches.

Builds networks with a configurable number of masters, streams per
master, payload sizes and deadline spread.  Deadlines are drawn so that
the *interesting* regime is covered: around ``nh · Tcycle`` for a
reference TTR, where FCFS is marginal and the priority policies can win.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..profibus.cycle import MessageCycleSpec
from ..profibus.network import Master, Network, Slave
from ..profibus.phy import PhyParameters
from ..profibus.stream import MessageStream
from ..profibus.timing import tdel


def random_stream(
    rng: random.Random,
    name: str,
    t_range: Tuple[int, int],
    d_over_t: Tuple[float, float],
    payload_range: Tuple[int, int] = (4, 32),
    high_priority: bool = True,
    jitter_over_t: Tuple[float, float] = (0.0, 0.0),
    max_retry: Optional[int] = None,
) -> MessageStream:
    """One random stream; D drawn as a fraction of T, J as a fraction of
    T from ``jitter_over_t``; ``max_retry`` overrides the PHY retry
    limit for the stream's cycle when given (retry-prone workloads)."""
    T = rng.randint(*t_range)
    frac = rng.uniform(*d_over_t)
    D = max(1, int(T * frac))
    # Draw jitter only when jitter is possible at all: a zero draw would
    # still advance the RNG and silently shift every seeded legacy
    # workload (any spelling of "no jitter" must skip the draw).
    J = int(T * rng.uniform(*jitter_over_t)) if jitter_over_t[1] > 0 else 0
    payload = rng.randint(*payload_range)
    return MessageStream(
        name=name,
        T=T,
        D=D,
        J=J,
        high_priority=high_priority,
        spec=MessageCycleSpec(req_payload=payload, resp_payload=payload,
                              max_retry=max_retry),
    )


def random_network(
    n_masters: int = 3,
    streams_per_master: int = 4,
    seed: int = 0,
    phy: Optional[PhyParameters] = None,
    period_ms: Tuple[float, float] = (20.0, 500.0),
    d_over_t: Tuple[float, float] = (0.25, 1.0),
    low_priority_streams: int = 1,
    payload_range: Tuple[int, int] = (4, 32),
    rng: Optional[random.Random] = None,
    jitter_over_t: Tuple[float, float] = (0.0, 0.0),
    max_retry: Optional[int] = None,
) -> Network:
    """A random network (TTR left unset; derive it per policy).

    Periods are drawn in milliseconds and converted to bit times at the
    PHY baud rate, so scenarios stay physically meaningful across baud
    rates.

    ``rng`` threads an explicit generator end-to-end (``seed`` is then
    ignored) so batch drivers can draw reproducible per-worker workloads
    without touching global ``random`` state.
    """
    if n_masters < 1 or streams_per_master < 1:
        raise ValueError("need at least one master and one stream")
    phy = phy or PhyParameters()
    if rng is None:
        rng = random.Random(seed)
    bits_per_ms = phy.baud_rate / 1000.0
    t_range = (
        max(1, int(period_ms[0] * bits_per_ms)),
        max(2, int(period_ms[1] * bits_per_ms)),
    )
    masters: List[Master] = []
    for k in range(n_masters):
        streams = [
            random_stream(
                rng,
                f"m{k}s{i}",
                t_range,
                d_over_t,
                payload_range=payload_range,
                jitter_over_t=jitter_over_t,
                max_retry=max_retry,
            )
            for i in range(streams_per_master)
        ]
        for i in range(low_priority_streams):
            streams.append(
                random_stream(
                    rng,
                    f"m{k}low{i}",
                    t_range,
                    (1.0, 1.0),
                    payload_range=payload_range,
                    high_priority=False,
                    max_retry=max_retry,
                )
            )
        masters.append(Master(address=k + 1, streams=tuple(streams)))
    slaves = tuple(
        Slave(address=100 + i) for i in range(n_masters * streams_per_master // 2)
    )
    return Network(masters=tuple(masters), slaves=slaves, phy=phy)


def network_with_ttr_headroom(
    network: Network, headroom: float = 2.0
) -> Network:
    """Attach a TTR of ``headroom × max(ring latency, Tdel)`` — a neutral
    operating point for simulation experiments that do not sweep TTR."""
    base = max(network.ring_latency(), tdel(network))
    return network.with_ttr(max(network.ring_latency(), int(base * headroom)))
