"""Random task-set generation for the §2 evaluation benches.

Period draws are log-uniform over ``[t_min, t_max]`` (Emberson et al.) so
short and long periods are equally represented per decade; execution
times come from UUniFast utilisations; deadlines are constrained-
deadline draws ``D ∈ [C + β·(T − C), T]`` with ``β ∈ [0,1]`` controlling
tightness.  All times are integers ≥ 1.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional

from ..core.task import Task, TaskSet
from .uunifast import uunifast_discard


def log_uniform_period(
    rng: random.Random, t_min: int = 10, t_max: int = 10_000, granularity: int = 1
) -> int:
    """One log-uniform integer period in [t_min, t_max]."""
    if not 0 < t_min <= t_max:
        raise ValueError("need 0 < t_min <= t_max")
    value = math.exp(rng.uniform(math.log(t_min), math.log(t_max)))
    period = max(t_min, min(t_max, int(round(value / granularity)) * granularity))
    return max(1, period)


def random_taskset(
    n: int,
    total_u: float,
    seed: int = 0,
    t_min: int = 10,
    t_max: int = 10_000,
    deadline_beta: Optional[float] = None,
    jitter_frac: float = 0.0,
    rng: Optional[random.Random] = None,
) -> TaskSet:
    """A random integer task set with utilisation ≈ ``total_u``.

    ``deadline_beta=None`` gives implicit deadlines (D = T); otherwise
    ``D`` is drawn in ``[C + β(T−C), T]``.  ``jitter_frac > 0`` adds
    release jitter up to that fraction of the period.  Execution times
    are rounded *down* (min 1) so the realised utilisation never exceeds
    the requested one by more than the rounding-up of tiny C's.

    ``rng`` threads an explicit generator (``seed`` is then ignored) so
    batch drivers can draw reproducible per-worker workloads without
    touching global ``random`` state.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if rng is None:
        rng = random.Random(seed)
    utils = uunifast_discard(n, total_u, rng)
    tasks: List[Task] = []
    for i, u in enumerate(utils):
        T = log_uniform_period(rng, t_min, t_max)
        C = max(1, int(u * T))
        if deadline_beta is None:
            D = T
        else:
            lo = C + deadline_beta * (T - C)
            D = rng.randint(max(C, int(lo)), T) if T > C else T
        J = int(jitter_frac * T) if jitter_frac else 0
        tasks.append(Task(C=C, T=T, D=D, J=J, name=f"t{i}"))
    return TaskSet(tasks)


def scale_to_utilization(taskset: TaskSet, total_u: float) -> TaskSet:
    """Rescale execution times so total utilisation ≈ ``total_u``."""
    current = taskset.utilization
    if current <= 0:
        raise ValueError("cannot scale a zero-utilisation set")
    factor = total_u / current
    scaled = []
    for t in taskset:
        c = max(1, int(round(t.C * factor)))
        c = min(c, t.D if t.D < t.T else t.T)  # keep C sane
        scaled.append(Task(C=c, T=t.T, D=t.D, J=t.J, priority=t.priority, name=t.name))
    return TaskSet(scaled)
