"""UUniFast utilisation generation (Bini & Buttazzo 2005).

Draws ``n`` per-task utilisations summing exactly to ``U``, uniformly
over the valid simplex — the standard workload generator for
schedulability experiments (benches E5/E6).  ``uunifast_discard``
re-draws until every utilisation is ≤ 1 (needed when ``U > 1`` would
otherwise produce impossible per-task loads).
"""

from __future__ import annotations

import random
from typing import List, Optional


def uunifast(n: int, total_u: float, rng: random.Random) -> List[float]:
    """n utilisations summing to ``total_u`` (classic UUniFast)."""
    if n <= 0:
        raise ValueError("n must be positive")
    if total_u < 0:
        raise ValueError("total_u must be >= 0")
    utils = []
    remaining = total_u
    for i in range(1, n):
        nxt = remaining * rng.random() ** (1.0 / (n - i))
        utils.append(remaining - nxt)
        remaining = nxt
    utils.append(remaining)
    return utils


def uunifast_discard(
    n: int,
    total_u: float,
    rng: random.Random,
    limit: float = 1.0,
    max_tries: int = 10_000,
) -> List[float]:
    """UUniFast with rejection of draws containing a utilisation > limit."""
    if total_u > n * limit:
        raise ValueError(f"cannot split U={total_u} into {n} parts <= {limit}")
    for _ in range(max_tries):
        utils = uunifast(n, total_u, rng)
        if all(u <= limit for u in utils):
            return utils
    raise RuntimeError("uunifast_discard failed to find a valid draw")
