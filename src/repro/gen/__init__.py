"""Workload generators: UUniFast task sets and random PROFIBUS scenarios."""

from .network_gen import network_with_ttr_headroom, random_network, random_stream
from .taskset import log_uniform_period, random_taskset, scale_to_utilization
from .uunifast import uunifast, uunifast_discard

__all__ = [
    "log_uniform_period",
    "network_with_ttr_headroom",
    "random_network",
    "random_stream",
    "random_taskset",
    "scale_to_utilization",
    "uunifast",
    "uunifast_discard",
]
