"""Seeded random network families for the fuzzing campaigns.

Each family stresses one corner of the model where the eq. (11)/(16)/
(17) bounds, the ``repro.perf`` kernels or the serialization layer could
plausibly diverge from the token-bus reality:

* ``multi-master-ring`` — many masters, shallow per-master load: the
  token-passing terms (``Tdel``, ring latency) dominate;
* ``jitter-heavy``    — large release jitter ``J`` relative to ``T``;
* ``low-dominated``   — background low-priority traffic outweighs the
  real-time streams (the eq. (13) blocking terms do the work);
* ``retry-prone``     — per-stream retry limits far above the PHY
  default, inflating ``Ch`` through the failed-attempt term;
* ``mixed-baud``      — the same logical workloads at every plausible
  line speed (bit-time scaling corners);
* ``tight-ttr``       — TTR within a token pass of the ring latency, so
  the late-token rule throttles masters to one message per visit;
* ``trace-replay``    — a base-family instance whose deadlines are
  reshaped around the responses a **recorded run** actually exhibited
  (reconstructed from the trace, the :mod:`repro.monitor` ingestion
  path): deadlines hugging observed reality from both sides, exactly
  where an analysis bound that is tight-but-wrong would get caught.

Families are pure functions of a :class:`random.Random`; the campaign
derives that generator from ``(seed, family, index)`` via **string**
seeding (:func:`family_rng`), which hashes with SHA-512 and is therefore
stable across processes and ``PYTHONHASHSEED`` settings — any
counterexample in a report can be regenerated from those three values.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Tuple

from ..gen.network_gen import network_with_ttr_headroom, random_network
from ..profibus.cycle import token_pass_time
from ..profibus.network import Network
from ..profibus.phy import PhyParameters

FamilyFn = Callable[[random.Random], Network]

#: Baud rates used by ``mixed-baud``.  The two slowest standard rates
#: (9.6/19.2 kbit/s) give millisecond periods of only a handful of bit
#: times — structurally overloaded beyond anything the analyses model —
#: so the family starts at 93.75 kbit/s.
_FUZZ_BAUD_RATES = (93_750, 187_500, 500_000, 1_500_000, 12_000_000)


def family_rng(seed: int, family: str, index: int,
               salt: str = "net") -> random.Random:
    """The campaign RNG for one instance (process-independent)."""
    return random.Random(f"{seed}:{family}:{index}:{salt}")


def _multi_master_ring(rng: random.Random) -> Network:
    net = random_network(
        n_masters=rng.randint(4, 6),
        streams_per_master=rng.randint(1, 2),
        period_ms=(10.0, 80.0),
        d_over_t=(0.3, 1.0),
        low_priority_streams=rng.randint(0, 1),
        payload_range=(2, 16),
        rng=rng,
    )
    return network_with_ttr_headroom(net, headroom=1.2 + 1.8 * rng.random())


def _jitter_heavy(rng: random.Random) -> Network:
    net = random_network(
        n_masters=rng.randint(2, 3),
        streams_per_master=rng.randint(2, 3),
        period_ms=(15.0, 100.0),
        d_over_t=(0.4, 1.0),
        low_priority_streams=1,
        payload_range=(2, 24),
        jitter_over_t=(0.05, 0.3),
        rng=rng,
    )
    return network_with_ttr_headroom(net, headroom=1.5 + rng.random())


def _low_dominated(rng: random.Random) -> Network:
    net = random_network(
        n_masters=rng.randint(1, 3),
        streams_per_master=1,
        period_ms=(20.0, 120.0),
        d_over_t=(0.5, 1.0),
        low_priority_streams=rng.randint(2, 4),
        payload_range=(8, 64),
        rng=rng,
    )
    return network_with_ttr_headroom(net, headroom=1.5 + 1.5 * rng.random())


def _retry_prone(rng: random.Random) -> Network:
    net = random_network(
        n_masters=rng.randint(2, 3),
        streams_per_master=rng.randint(1, 3),
        period_ms=(20.0, 120.0),
        d_over_t=(0.4, 1.0),
        low_priority_streams=1,
        payload_range=(2, 16),
        max_retry=rng.randint(2, 7),
        rng=rng,
    )
    return network_with_ttr_headroom(net, headroom=1.5 + rng.random())


def _mixed_baud(rng: random.Random) -> Network:
    phy = PhyParameters(baud_rate=rng.choice(_FUZZ_BAUD_RATES))
    net = random_network(
        n_masters=rng.randint(2, 3),
        streams_per_master=rng.randint(1, 3),
        period_ms=(15.0, 100.0),
        d_over_t=(0.3, 1.0),
        low_priority_streams=rng.randint(0, 1),
        payload_range=(2, 24),
        phy=phy,
        rng=rng,
    )
    return network_with_ttr_headroom(net, headroom=1.3 + 1.2 * rng.random())


def _tight_ttr(rng: random.Random) -> Network:
    net = random_network(
        n_masters=rng.randint(2, 4),
        streams_per_master=rng.randint(1, 2),
        period_ms=(15.0, 80.0),
        d_over_t=(0.5, 1.0),
        low_priority_streams=rng.randint(0, 1),
        payload_range=(2, 12),
        rng=rng,
    )
    slack = rng.randint(0, 2 * token_pass_time(net.phy))
    return net.with_ttr(net.ring_latency() + slack)


_BASE_FAMILIES: Dict[str, FamilyFn] = {
    "multi-master-ring": _multi_master_ring,
    "jitter-heavy": _jitter_heavy,
    "low-dominated": _low_dominated,
    "retry-prone": _retry_prone,
    "mixed-baud": _mixed_baud,
    "tight-ttr": _tight_ttr,
}

#: Trace-replay simulation window (bit times) and recorder cap — short
#: on purpose: the family wants the transient responses of a run's
#: opening rotations, not steady state, and must stay cheap per instance.
_REPLAY_HORIZON = 300_000
_REPLAY_MAX_EVENTS = 50_000


def _trace_replay(rng: random.Random) -> Network:
    import dataclasses

    from ..monitor.engine import observed_worst_responses
    from ..sim.token import TokenBusConfig, simulate_token_bus, stream_key
    from ..sim.trace import BusTrace

    base = _BASE_FAMILIES[rng.choice(sorted(_BASE_FAMILIES))]
    net = base(rng)
    policy = rng.choice(("stock-fcfs", "ap-dm", "ap-edf"))
    tracer = BusTrace(max_events=_REPLAY_MAX_EVENTS)
    simulate_token_bus(
        net,
        _REPLAY_HORIZON,
        config=TokenBusConfig(policy=policy, tracer=tracer,
                              seed=rng.randrange(2 ** 32)),
    )
    worst = observed_worst_responses(tracer.events)
    masters = []
    for m in net.masters:
        streams = []
        for s in m.streams:
            observed = worst.get(stream_key(m.name, s.name))
            if s.high_priority and observed:
                # Deadline hugging the recorded response from either
                # side (0.8x–1.6x): instances dense around the exact
                # region where the analytic bound must separate sound
                # from unsound.
                factor = 0.8 + 0.8 * rng.random()
                s = dataclasses.replace(s, D=max(1, int(observed * factor)))
            streams.append(s)
        masters.append(m.with_streams(tuple(streams)))
    return Network(masters=tuple(masters), slaves=net.slaves,
                   phy=net.phy, ttr=net.ttr)


FAMILIES: Dict[str, FamilyFn] = {
    **_BASE_FAMILIES,
    "trace-replay": _trace_replay,
}


def generate_instance(seed: int, family: str, index: int) -> Network:
    """Instance ``index`` of ``family`` under campaign ``seed`` — a pure
    function of its three arguments."""
    try:
        fn = FAMILIES[family]
    except KeyError:
        raise ValueError(
            f"unknown family {family!r}; pick from {sorted(FAMILIES)}"
        )
    return fn(family_rng(seed, family, index))
