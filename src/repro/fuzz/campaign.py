"""The differential-fuzzing campaign engine.

A campaign is a pure function of ``(seed, budget, families, policies)``:

1. generate ``budget`` networks, cycling the requested families, each a
   pure function of ``(seed, family, index)``;
2. run the **kernel-equivalence oracle at scale**: the whole
   (network × policy) grid goes through :func:`repro.perf.batch.analyse_many`
   once per analysis mode — generic exact, fast scalar kernels, and the
   structure-of-arrays vector kernels — over the process pool
   (``workers=N``), and the three row lists must be bit-identical;
3. run the **per-instance oracles** — **round-trip**, **sweep-scaling**
   (with a seeded scale factor) and **token-bus soundness** (soundness
   rotates through the policies so a budget-``n`` campaign simulates
   ``n`` networks, not ``3n``) — over the same process pool via
   :func:`repro.perf.batch.pooled_imap`.  The soundness simulations are
   the dominant cost of a campaign, so this is what makes
   ``--budget 100000 --workers N`` an overnight-feasible run;
4. shrink each failure to a locally-minimal network that still fails
   the same oracle, and package everything as a
   :class:`CampaignResult` for ``FUZZ_report.json`` (schema
   ``profibus-rt/fuzz/v2``: per-(family × oracle) counters and a
   wall-clock phase breakdown).

Long campaigns can stream a **JSONL checkpoint** (``checkpoint=PATH`` /
``--checkpoint``): every finished instance appends one line, and a
killed campaign rerun with the same checkpoint resumes where it stopped
— the resumed run folds the recorded rows back in index order, so its
counters and counterexamples are identical to an uninterrupted run's
(only the timing fields differ).  The cheap kernel-equivalence grid is
recomputed on resume; it is deterministic, so the outcome is unchanged.

The CLI front end is ``repro-cli fuzz`` (see :mod:`repro.cli`); the
report schema is documented in PERF.md.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from functools import partial
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    IO,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..perf.batch import analyse_many, pooled_imap
from ..profibus.network import Network
from ..schemas import FUZZ_CHECKPOINT_SCHEMA as _CHECKPOINT_SCHEMA
from .families import FAMILIES, family_rng, generate_instance
from .oracles import (
    DEFAULT_POLICIES,
    STATUS_FAIL,
    STATUS_OK,
    STATUS_SKIPPED,
    OracleOutcome,
    check_kernel_equivalence,
    check_roundtrip,
    check_soundness,
    check_sweep_scaling,
)
from .shrink import shrink_network

ORACLE_SOUNDNESS = "soundness"
ORACLE_KERNEL = "kernel_equivalence"
ORACLE_ROUNDTRIP = "roundtrip"
ORACLE_SWEEP = "sweep_scaling"
ORACLES = (ORACLE_SOUNDNESS, ORACLE_KERNEL, ORACLE_ROUNDTRIP, ORACLE_SWEEP)

#: counters kept per oracle, overall and per family
COUNTERS = ("checked", "failed", "skipped", "extended")



@dataclass(frozen=True)
class CampaignConfig:
    budget: int = 200
    seed: int = 0
    families: Tuple[str, ...] = tuple(FAMILIES)
    policies: Tuple[str, ...] = DEFAULT_POLICIES
    #: process-pool size for the kernel-equivalence grid *and* the
    #: per-instance oracles (``None`` = cpu count, ``1`` = serial)
    workers: Optional[int] = 1
    #: initial soundness-simulation horizon budget (bit times); runs
    #: whose required horizon exceeds it start capped here and rely on
    #: the auto-extender below
    horizon_cap: int = 3_000_000
    #: geometric horizon retries before an ``incomplete`` soundness run
    #: is recorded as a (tracked) skip
    max_horizon_extensions: int = 4
    horizon_extension_factor: float = 2.0
    #: JSONL file streaming one line per finished instance; an existing
    #: file with a matching header resumes the campaign after it
    checkpoint: Optional[str] = None
    max_counterexamples: int = 10
    shrink: bool = True
    shrink_evals: int = 250
    #: golden-corpus directory; when set, every shrunk counterexample is
    #: promoted into it at campaign end (``repro.corpus``).  Like
    #: ``workers``, deliberately absent from the checkpoint fingerprint:
    #: turning promotion on for a resumed campaign is a feature.
    corpus_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.budget < 1:
            raise ValueError("budget must be >= 1")
        if self.max_counterexamples < 1:
            raise ValueError("max_counterexamples must be >= 1")
        if self.max_horizon_extensions < 0:
            raise ValueError("max_horizon_extensions must be >= 0")
        if self.horizon_extension_factor <= 1.0:
            raise ValueError("horizon_extension_factor must be > 1")
        if not self.families:
            raise ValueError("need at least one family")
        unknown = set(self.families) - set(FAMILIES)
        if unknown:
            raise ValueError(
                f"unknown families {sorted(unknown)}; pick from {sorted(FAMILIES)}"
            )


@dataclass(frozen=True)
class CounterExample:
    """One oracle failure, with its shrunk reproduction."""

    oracle: str
    family: str
    index: int
    seed: int
    policy: Optional[str]
    factor: Optional[float]
    detail: str
    network: Network
    shrunk: Network
    shrunk_detail: str


@dataclass(frozen=True)
class CampaignResult:
    config: CampaignConfig
    instances: int
    family_counts: Dict[str, int]
    #: oracle name → {"checked": n, "failed": n, "skipped": n, "extended": n}
    oracle_stats: Dict[str, Dict[str, int]]
    #: family → oracle name → the same counters (failure-rate tracking
    #: per family is what overnight campaigns trend over time)
    family_oracle_stats: Dict[str, Dict[str, Dict[str, int]]]
    counterexamples: List[CounterExample]
    #: wall-clock phase breakdown: generate / kernel_grid /
    #: instance_oracles / shrink / total, in seconds
    timings: Dict[str, float]
    #: instances folded back from the checkpoint instead of re-run
    resumed_instances: int = 0
    #: corpus entry ids frozen from the shrunk counterexamples (only
    #: when ``config.corpus_dir`` is set)
    promoted_entries: Tuple[str, ...] = ()
    #: counterexamples already present in the corpus (idempotence)
    promotion_skipped: Tuple[str, ...] = ()
    #: ``(entry_id, error)`` for counterexamples that could not be
    #: frozen — a non-promotable counterexample must fail the build
    promotion_errors: Tuple[Tuple[str, str], ...] = ()

    @property
    def elapsed_seconds(self) -> float:
        return self.timings.get("total_seconds", 0.0)

    @property
    def total_failed(self) -> int:
        return sum(row["failed"] for row in self.oracle_stats.values())

    @property
    def ok(self) -> bool:
        """True iff no oracle failed — derived from the failure
        *counters*, not the counterexample list, which is truncated to
        ``max_counterexamples`` and must not mask extra failures."""
        return self.total_failed == 0


@dataclass
class _Failure:
    oracle: str
    family: str
    index: int
    policy: Optional[str]
    factor: Optional[float]
    detail: str


def _sweep_factor(seed: int, family: str, index: int) -> float:
    """Seeded per-instance deadline-scale factor, biased toward the
    fine-grid regime where rounding vs truncation differ."""
    return round(family_rng(seed, family, index, salt="sweep")
                 .uniform(0.25, 1.75), 3)


def _batch_rows(networks: Sequence[Network], policies: Sequence[str],
                workers: Optional[int], mode: str):
    return analyse_many(networks, policies, workers=workers, mode=mode)


def _outcome_doc(oracle: str, outcome: OracleOutcome,
                 policy: Optional[str] = None,
                 factor: Optional[float] = None) -> Dict[str, Any]:
    """One oracle result as the plain-JSON row the checkpoint stores."""
    return {
        "oracle": oracle,
        "status": outcome.status,
        "detail": outcome.detail,
        "policy": policy,
        "factor": factor,
        "extensions": outcome.extensions,
    }


def _instance_worker(
    item: Tuple[str, int],
    seed: int,
    policies: Tuple[str, ...],
    horizon_cap: int,
    max_extensions: int,
    extension_factor: float,
) -> Dict[str, Any]:
    """Pool entry: all per-instance oracles for one ``(family, index)``.

    The worker regenerates the instance from ``(seed, family, index)``
    — cheaper than pickling the network over, and exactly what makes the
    checkpoint format self-contained.  The row records the instance's
    canonical content fingerprint, so a resume can verify the recorded
    results still describe the network the generator produces *today*
    (the header pins the campaign coordinates, not the generator)."""
    family, index = item
    net = generate_instance(seed, family, index)
    policy = policies[index % len(policies)]
    factor = _sweep_factor(seed, family, index)
    results = [
        _outcome_doc(ORACLE_ROUNDTRIP, check_roundtrip(net)),
        _outcome_doc(
            ORACLE_SWEEP, check_sweep_scaling(net, factor, policy),
            policy=policy, factor=factor,
        ),
        _outcome_doc(
            ORACLE_SOUNDNESS,
            check_soundness(
                net, policy, horizon_cap=horizon_cap, seed=seed,
                max_extensions=max_extensions,
                extension_factor=extension_factor,
            ),
            policy=policy,
        ),
    ]
    return {"kind": "row", "family": family, "index": index,
            "fingerprint": net.fingerprint(), "results": results}


# ----------------------------------------------------------- checkpointing

def _checkpoint_header(config: CampaignConfig) -> Dict[str, Any]:
    """The config fingerprint a checkpoint must match to be resumed.
    ``workers`` is deliberately absent: resuming with a different pool
    size is a feature, not a mismatch."""
    return {
        "kind": "header",
        "schema": _CHECKPOINT_SCHEMA,
        "seed": config.seed,
        "budget": config.budget,
        "families": list(config.families),
        "policies": list(config.policies),
        "horizon_cap": config.horizon_cap,
        "max_horizon_extensions": config.max_horizon_extensions,
        "horizon_extension_factor": config.horizon_extension_factor,
    }


def _load_checkpoint(
    path: Path, config: CampaignConfig
) -> Tuple[Dict[int, Dict[str, Any]], int]:
    """Recorded instance rows from an interrupted campaign, keyed by
    index, plus the byte offset where intact content ends.  Empty when
    the file does not exist (or holds no header yet).  Raises
    ``ValueError`` when the header belongs to a different campaign.  A
    partial trailing line (the process was killed mid-write) is ignored
    — the caller must truncate the file to the returned offset before
    appending, or the next record would fuse with the partial line into
    one unparseable row and lose everything recorded after it on the
    *next* resume."""
    if not path.exists():
        return {}, 0
    done: Dict[int, Dict[str, Any]] = {}
    header_seen = False
    valid_end = 0
    with path.open("rb") as fh:
        for raw in fh:
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                valid_end += len(raw)
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if not header_seen:
                    raise ValueError(
                        f"checkpoint {path} has a corrupt header line; "
                        "delete the file to start fresh"
                    )
                break  # killed mid-write: everything before is intact
            if not raw.endswith(b"\n"):
                # a complete-looking JSON document without its newline is
                # still a torn write; drop it too
                break
            valid_end += len(raw)
            if not header_seen:
                expected = _checkpoint_header(config)
                if record != expected:
                    raise ValueError(
                        f"checkpoint {path} belongs to a different campaign "
                        f"(header {record!r} != config {expected!r}); "
                        "delete it or match the original configuration"
                    )
                header_seen = True
                continue
            if record.get("kind") != "row":
                continue
            index = record["index"]
            if 0 <= index < config.budget:
                done[index] = record
    return done, valid_end


def run_campaign(config: CampaignConfig = CampaignConfig()) -> CampaignResult:
    start = time.perf_counter()
    timings: Dict[str, float] = {}
    pairs: List[Tuple[str, int]] = []
    family_counts: Dict[str, int] = {f: 0 for f in config.families}
    for i in range(config.budget):
        family = config.families[i % len(config.families)]
        pairs.append((family, i))
        family_counts[family] += 1

    def new_counters() -> Dict[str, int]:
        return {c: 0 for c in COUNTERS}

    stats = {name: new_counters() for name in ORACLES}
    family_stats = {
        family: {name: new_counters() for name in ORACLES}
        for family in config.families
    }
    failures: List[_Failure] = []

    def fold(oracle: str, family: str, status: str, extensions: int) -> None:
        for bucket in (stats[oracle], family_stats[family][oracle]):
            if status == STATUS_SKIPPED:
                bucket["skipped"] += 1
            else:
                bucket["checked"] += 1
                if status == STATUS_FAIL:
                    bucket["failed"] += 1
            if extensions:
                bucket["extended"] += 1

    # -- resume state ---------------------------------------------------
    ckpt_path = Path(config.checkpoint) if config.checkpoint else None
    done: Dict[int, Dict[str, Any]] = {}
    ckpt_file: Optional[IO[str]] = None
    if ckpt_path is not None:
        done, valid_end = _load_checkpoint(ckpt_path, config)
        ckpt_file = ckpt_path.open("a")
        if ckpt_file.tell() != valid_end:
            # drop the torn trailing line a kill left behind, so the next
            # append starts on a fresh line instead of fusing with it
            ckpt_file.truncate(valid_end)
            ckpt_file.seek(valid_end)
        if valid_end == 0:
            ckpt_file.write(
                json.dumps(_checkpoint_header(config), sort_keys=True) + "\n"
            )
            ckpt_file.flush()
    resumed = len(done)

    try:
        # -- generate the instances (also needed by the kernel grid) ----
        t0 = time.perf_counter()
        networks = [
            generate_instance(config.seed, family, index)
            for family, index in pairs
        ]
        timings["generate_seconds"] = time.perf_counter() - t0

        # -- oracle (b) at scale: one pooled grid per mode --------------
        # Deterministic and cheap next to the simulations, so a resumed
        # campaign simply recomputes it.
        t0 = time.perf_counter()
        generic_rows = _batch_rows(networks, config.policies, config.workers,
                                   "generic")
        fast_rows = _batch_rows(networks, config.policies, config.workers,
                                "fast")
        vector_rows = _batch_rows(networks, config.policies, config.workers,
                                  "vectorized")
        mismatched = {
            g.index
            for g, f, v in zip(generic_rows, fast_rows, vector_rows)
            if f != g or v != g
        }
        for (family, index), net in zip(pairs, networks):
            if index in mismatched:
                # the pooled sweep found it; the per-instance check
                # supplies the detailed divergence
                outcome = check_kernel_equivalence(net, config.policies)
                detail = outcome.detail or "batch mode rows diverge"
                fold(ORACLE_KERNEL, family, STATUS_FAIL, 0)
                failures.append(_Failure(
                    ORACLE_KERNEL, family, index, None, None, detail,
                ))
            else:
                fold(ORACLE_KERNEL, family, STATUS_OK, 0)
        timings["kernel_grid_seconds"] = time.perf_counter() - t0

        # -- per-instance oracles (a), (c), (d) on the pool -------------
        t0 = time.perf_counter()
        todo = [pair for pair in pairs if pair[1] not in done]
        worker = partial(
            _instance_worker,
            seed=config.seed,
            policies=config.policies,
            horizon_cap=config.horizon_cap,
            max_extensions=config.max_horizon_extensions,
            extension_factor=config.horizon_extension_factor,
        )
        records = list(done.values())
        for record in pooled_imap(worker, todo, workers=config.workers):
            if ckpt_file is not None:
                ckpt_file.write(json.dumps(record, sort_keys=True) + "\n")
                ckpt_file.flush()
            records.append(record)
        timings["instance_oracles_seconds"] = time.perf_counter() - t0
    finally:
        if ckpt_file is not None:
            ckpt_file.close()

    # Fold in index order: a resumed campaign and an uninterrupted one
    # see the same failure sequence, so truncation to max_counterexamples
    # picks the same instances.
    records.sort(key=lambda r: r["index"])
    for record in records:
        family, index = record["family"], record["index"]
        if pairs[index] != (family, index):
            raise ValueError(
                f"checkpoint row {index} carries family {family!r}, "
                f"campaign expects {pairs[index][0]!r}"
            )
        recorded_fp = record.get("fingerprint")
        if recorded_fp is not None:
            # value-identity check: the header pins seed/family/budget,
            # but only the fingerprint catches the generator itself
            # having changed under a checkpoint (absent in rows written
            # by older builds — those resume unchecked)
            actual_fp = networks[index].fingerprint()
            if recorded_fp != actual_fp:
                raise ValueError(
                    f"checkpoint row {index} ({family}) was recorded for "
                    f"network content {recorded_fp[:12]}…, but the "
                    f"generator now produces {actual_fp[:12]}…; the "
                    "instance generator changed — delete the checkpoint "
                    "and re-run the campaign"
                )
        for row in record["results"]:
            fold(row["oracle"], family, row["status"], row["extensions"])
            if row["status"] == STATUS_FAIL:
                failures.append(_Failure(
                    row["oracle"], family, index, row["policy"],
                    row["factor"], row["detail"],
                ))

    # -- shrink the survivors -------------------------------------------
    t0 = time.perf_counter()
    counterexamples: List[CounterExample] = []
    for failure in failures[: config.max_counterexamples]:
        network = generate_instance(config.seed, failure.family,
                                    failure.index)
        shrunk = network
        shrunk_detail = failure.detail
        if config.shrink:
            shrunk = shrink_network(network, _predicate_for(failure, config),
                                    max_evals=config.shrink_evals)
            if shrunk is not network:
                shrunk_detail = _redescribe(failure, shrunk, config)
        counterexamples.append(CounterExample(
            oracle=failure.oracle,
            family=failure.family,
            index=failure.index,
            seed=config.seed,
            policy=failure.policy,
            factor=failure.factor,
            detail=failure.detail,
            network=network,
            shrunk=shrunk,
            shrunk_detail=shrunk_detail,
        ))
    timings["shrink_seconds"] = time.perf_counter() - t0

    # -- promote the shrunk counterexamples into the golden corpus ------
    promoted: Tuple[str, ...] = ()
    promotion_skipped: Tuple[str, ...] = ()
    promotion_errors: Tuple[Tuple[str, str], ...] = ()
    t0 = time.perf_counter()
    if config.corpus_dir and counterexamples:
        from ..corpus.store import promote_counterexamples

        try:
            promotion = promote_counterexamples(counterexamples,
                                                config.corpus_dir)
        except Exception as exc:
            # A broken corpus directory must not discard the campaign
            # result (hours of simulation) — surface it as a promotion
            # error instead; the CLI exits non-zero on those.
            promotion_errors = ((config.corpus_dir, str(exc)),)
        else:
            promoted = tuple(promotion.added)
            promotion_skipped = tuple(promotion.skipped)
            promotion_errors = tuple(promotion.errors)
    # promotion recomputes full goldens (incl. a validation simulation
    # per counterexample), so it is its own phase in the breakdown
    timings["promotion_seconds"] = time.perf_counter() - t0
    timings["total_seconds"] = time.perf_counter() - start

    return CampaignResult(
        config=config,
        instances=len(pairs),
        family_counts=family_counts,
        oracle_stats=stats,
        family_oracle_stats=family_stats,
        counterexamples=counterexamples,
        timings=timings,
        resumed_instances=resumed,
        promoted_entries=promoted,
        promotion_skipped=promotion_skipped,
        promotion_errors=promotion_errors,
    )


def _predicate_for(failure: _Failure,
                   config: CampaignConfig) -> Callable[[Network], bool]:
    """The shrink predicate: does ``network`` still fail the same oracle
    under the campaign's own configuration?"""
    if failure.oracle == ORACLE_ROUNDTRIP:
        return lambda n: check_roundtrip(n).failed
    if failure.oracle == ORACLE_KERNEL:
        if (failure.detail or "").startswith("vectorized:"):
            # A vectorized-only divergence (fast == generic, vector leg
            # differs) must shrink against *that* divergence — the plain
            # `.failed` predicate would let the shrinker wander onto an
            # unrelated fast/generic disagreement and minimise the wrong
            # bug.
            def vec_only(n: Network) -> bool:
                outcome = check_kernel_equivalence(n, config.policies)
                return (outcome.failed
                        and outcome.detail.startswith("vectorized:"))

            return vec_only
        return lambda n: check_kernel_equivalence(n, config.policies).failed
    if failure.oracle == ORACLE_SWEEP:
        return lambda n: check_sweep_scaling(
            n, failure.factor, failure.policy or "dm"
        ).failed
    if failure.oracle == ORACLE_SOUNDNESS:
        return lambda n: check_soundness(
            n, failure.policy or "dm", horizon_cap=config.horizon_cap,
            seed=config.seed, max_extensions=config.max_horizon_extensions,
            extension_factor=config.horizon_extension_factor,
        ).failed
    raise ValueError(f"unknown oracle {failure.oracle!r}")


def _redescribe(failure: _Failure, shrunk: Network,
                config: CampaignConfig) -> str:
    """Re-run the failing oracle on the shrunk network for its detail —
    under the campaign's configuration (the kernel oracle in particular
    must see ``config.policies``: describing the shrunk network against
    the default policy set can disagree with the shrink predicate when a
    custom ``--policies`` campaign found the failure)."""
    try:
        if failure.oracle == ORACLE_ROUNDTRIP:
            return check_roundtrip(shrunk).detail
        if failure.oracle == ORACLE_KERNEL:
            return check_kernel_equivalence(shrunk, config.policies).detail
        if failure.oracle == ORACLE_SWEEP:
            return check_sweep_scaling(shrunk, failure.factor,
                                       failure.policy or "dm").detail
        if failure.oracle == ORACLE_SOUNDNESS:
            return check_soundness(
                shrunk, failure.policy or "dm",
                horizon_cap=config.horizon_cap, seed=config.seed,
                max_extensions=config.max_horizon_extensions,
                extension_factor=config.horizon_extension_factor,
            ).detail
    except Exception as exc:  # pragma: no cover - diagnostic best effort
        return f"(detail unavailable on shrunk network: {exc})"
    return failure.detail
