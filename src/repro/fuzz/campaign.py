"""The differential-fuzzing campaign engine.

A campaign is a pure function of ``(seed, budget, families, policies)``:

1. generate ``budget`` networks, cycling the requested families, each a
   pure function of ``(seed, family, index)``;
2. run the **kernel-equivalence oracle at scale**: the whole
   (network × policy) grid goes through :func:`repro.perf.batch.analyse_many`
   twice — fast paths on, then the generic exact path — optionally over
   the process pool (``workers=N``), and the two row lists must be
   bit-identical;
3. per instance, run the **round-trip**, **sweep-scaling** (with a
   seeded scale factor) and **token-bus soundness** oracles (soundness
   rotates through the policies so a budget-``n`` campaign simulates
   ``n`` networks, not ``3n``);
4. shrink each failure to a locally-minimal network that still fails
   the same oracle, and package everything as a
   :class:`CampaignResult` for ``FUZZ_report.json``.

The CLI front end is ``repro-cli fuzz`` (see :mod:`repro.cli`); the
report schema is documented in PERF.md.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..perf.batch import analyse_many
from ..perf.config import set_fast_path
from ..profibus.network import Network
from .families import FAMILIES, family_rng, generate_instance
from .oracles import (
    DEFAULT_POLICIES,
    STATUS_FAIL,
    STATUS_SKIPPED,
    OracleOutcome,
    check_kernel_equivalence,
    check_roundtrip,
    check_soundness,
    check_sweep_scaling,
)
from .shrink import shrink_network

ORACLE_SOUNDNESS = "soundness"
ORACLE_KERNEL = "kernel_equivalence"
ORACLE_ROUNDTRIP = "roundtrip"
ORACLE_SWEEP = "sweep_scaling"
ORACLES = (ORACLE_SOUNDNESS, ORACLE_KERNEL, ORACLE_ROUNDTRIP, ORACLE_SWEEP)


@dataclass(frozen=True)
class CampaignConfig:
    budget: int = 200
    seed: int = 0
    families: Tuple[str, ...] = tuple(FAMILIES)
    policies: Tuple[str, ...] = DEFAULT_POLICIES
    #: process-pool size for the batched kernel-equivalence sweep
    #: (``None`` = cpu count, ``1`` = serial in-process)
    workers: Optional[int] = 1
    #: skip the soundness simulation when the required horizon exceeds
    #: this many bit times (counted as ``skipped`` in the report)
    horizon_cap: int = 3_000_000
    max_counterexamples: int = 10
    shrink: bool = True
    shrink_evals: int = 250

    def __post_init__(self) -> None:
        if self.budget < 1:
            raise ValueError("budget must be >= 1")
        if self.max_counterexamples < 1:
            raise ValueError("max_counterexamples must be >= 1")
        if not self.families:
            raise ValueError("need at least one family")
        unknown = set(self.families) - set(FAMILIES)
        if unknown:
            raise ValueError(
                f"unknown families {sorted(unknown)}; pick from {sorted(FAMILIES)}"
            )


@dataclass(frozen=True)
class CounterExample:
    """One oracle failure, with its shrunk reproduction."""

    oracle: str
    family: str
    index: int
    seed: int
    policy: Optional[str]
    factor: Optional[float]
    detail: str
    network: Network
    shrunk: Network
    shrunk_detail: str


@dataclass(frozen=True)
class CampaignResult:
    config: CampaignConfig
    instances: int
    family_counts: Dict[str, int]
    #: oracle name → {"checked": n, "failed": n, "skipped": n}
    oracle_stats: Dict[str, Dict[str, int]]
    counterexamples: List[CounterExample]
    elapsed_seconds: float

    @property
    def total_failed(self) -> int:
        return sum(row["failed"] for row in self.oracle_stats.values())

    @property
    def ok(self) -> bool:
        """True iff no oracle failed — derived from the failure
        *counters*, not the counterexample list, which is truncated to
        ``max_counterexamples`` and must not mask extra failures."""
        return self.total_failed == 0


@dataclass
class _Failure:
    oracle: str
    family: str
    index: int
    policy: Optional[str]
    factor: Optional[float]
    detail: str
    network: Network
    predicate: Callable[[Network], bool]


def _sweep_factor(seed: int, family: str, index: int) -> float:
    """Seeded per-instance deadline-scale factor, biased toward the
    fine-grid regime where rounding vs truncation differ."""
    return round(family_rng(seed, family, index, salt="sweep")
                 .uniform(0.25, 1.75), 3)


def _batch_rows(networks: Sequence[Network], policies: Sequence[str],
                workers: Optional[int], fast: bool):
    previous = set_fast_path(fast)
    try:
        return analyse_many(networks, policies, workers=workers)
    finally:
        set_fast_path(previous)


def run_campaign(config: CampaignConfig = CampaignConfig()) -> CampaignResult:
    start = time.perf_counter()
    instances: List[Tuple[str, int, Network]] = []
    family_counts: Dict[str, int] = {f: 0 for f in config.families}
    for i in range(config.budget):
        family = config.families[i % len(config.families)]
        instances.append((family, i, generate_instance(config.seed, family, i)))
        family_counts[family] += 1

    stats = {
        name: {"checked": 0, "failed": 0, "skipped": 0} for name in ORACLES
    }
    failures: List[_Failure] = []

    def record(oracle: str, outcome: OracleOutcome, family: str, index: int,
               network: Network, predicate: Callable[[Network], bool],
               policy: Optional[str] = None,
               factor: Optional[float] = None) -> None:
        if outcome.status == STATUS_SKIPPED:
            stats[oracle]["skipped"] += 1
            return
        stats[oracle]["checked"] += 1
        if outcome.status == STATUS_FAIL:
            stats[oracle]["failed"] += 1
            failures.append(_Failure(oracle, family, index, policy, factor,
                                     outcome.detail, network, predicate))

    # -- oracle (b) at scale: one pooled grid per mode ------------------
    networks = [net for _family, _index, net in instances]
    fast_rows = _batch_rows(networks, config.policies, config.workers, True)
    generic_rows = _batch_rows(networks, config.policies, config.workers,
                               False)
    mismatched = {
        f.index
        for f, g in zip(fast_rows, generic_rows)
        if f != g
    }
    for family, index, net in instances:
        stats[ORACLE_KERNEL]["checked"] += 1
        if index in mismatched:
            # the pooled sweep found it; the per-instance check supplies
            # the detailed divergence (and serves as the shrink predicate)
            outcome = check_kernel_equivalence(net, config.policies)
            detail = outcome.detail or "batch fast/generic rows diverge"
            stats[ORACLE_KERNEL]["failed"] += 1
            failures.append(_Failure(
                ORACLE_KERNEL, family, index, None, None, detail, net,
                lambda n: check_kernel_equivalence(n, config.policies).failed,
            ))

    # -- per-instance oracles (a), (c), (d) -----------------------------
    for family, index, net in instances:
        record(
            ORACLE_ROUNDTRIP, check_roundtrip(net), family, index, net,
            lambda n: check_roundtrip(n).failed,
        )

        factor = _sweep_factor(config.seed, family, index)
        policy = config.policies[index % len(config.policies)]
        record(
            ORACLE_SWEEP, check_sweep_scaling(net, factor, policy),
            family, index, net,
            lambda n, _f=factor, _p=policy:
                check_sweep_scaling(n, _f, _p).failed,
            policy=policy, factor=factor,
        )

        record(
            ORACLE_SOUNDNESS,
            check_soundness(net, policy, horizon_cap=config.horizon_cap,
                            seed=config.seed),
            family, index, net,
            lambda n, _p=policy: check_soundness(
                n, _p, horizon_cap=config.horizon_cap, seed=config.seed
            ).failed,
            policy=policy,
        )

    # -- shrink the survivors -------------------------------------------
    counterexamples: List[CounterExample] = []
    for failure in failures[: config.max_counterexamples]:
        shrunk = failure.network
        shrunk_detail = failure.detail
        if config.shrink:
            shrunk = shrink_network(failure.network, failure.predicate,
                                    max_evals=config.shrink_evals)
            if shrunk is not failure.network:
                shrunk_detail = _redescribe(failure, shrunk, config.seed)
        counterexamples.append(CounterExample(
            oracle=failure.oracle,
            family=failure.family,
            index=failure.index,
            seed=config.seed,
            policy=failure.policy,
            factor=failure.factor,
            detail=failure.detail,
            network=failure.network,
            shrunk=shrunk,
            shrunk_detail=shrunk_detail,
        ))

    return CampaignResult(
        config=config,
        instances=len(instances),
        family_counts=family_counts,
        oracle_stats=stats,
        counterexamples=counterexamples,
        elapsed_seconds=time.perf_counter() - start,
    )


def _redescribe(failure: _Failure, shrunk: Network, seed: int) -> str:
    """Re-run the failing oracle on the shrunk network for its detail."""
    try:
        if failure.oracle == ORACLE_ROUNDTRIP:
            return check_roundtrip(shrunk).detail
        if failure.oracle == ORACLE_KERNEL:
            return check_kernel_equivalence(shrunk).detail
        if failure.oracle == ORACLE_SWEEP:
            return check_sweep_scaling(shrunk, failure.factor,
                                       failure.policy or "dm").detail
        if failure.oracle == ORACLE_SOUNDNESS:
            return check_soundness(shrunk, failure.policy or "dm",
                                   seed=seed).detail
    except Exception as exc:  # pragma: no cover - diagnostic best effort
        return f"(detail unavailable on shrunk network: {exc})"
    return failure.detail
