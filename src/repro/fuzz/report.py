"""``FUZZ_report.json`` — the machine-readable campaign artefact.

Schema ``profibus-rt/fuzz/v2`` (documented with an annotated example in
PERF.md, "Fuzzing & differential validation").  v2 adds per-(family ×
oracle) counters (``family_oracles``), an ``extended`` counter for
soundness runs the horizon auto-extender had to retry, a wall-clock
phase breakdown (``timings``) and the checkpoint/resume fields.
Counterexample entries carry both the original failing network and its
shrunk form as scenario documents (the
:mod:`repro.profibus.serialization` format), so a report is
self-contained: feed either document to ``repro-cli analyse --file`` or
rebuild the original instance from ``(seed, family, index)`` via
:func:`repro.fuzz.generate_instance`.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict, Union

from ..profibus.serialization import network_to_dict
from ..schemas import FUZZ_SCHEMA
from .campaign import COUNTERS, CampaignResult, CounterExample


def _counterexample_doc(ce: CounterExample) -> Dict[str, Any]:
    return {
        "oracle": ce.oracle,
        "family": ce.family,
        "index": ce.index,
        "seed": ce.seed,
        "policy": ce.policy,
        "factor": ce.factor,
        "detail": ce.detail,
        "network": network_to_dict(ce.network),
        "shrunk_network": network_to_dict(ce.shrunk),
        "shrunk_detail": ce.shrunk_detail,
        "repro": (
            f"repro.fuzz.generate_instance(seed={ce.seed}, "
            f"family={ce.family!r}, index={ce.index})"
        ),
    }


def report_to_dict(result: CampaignResult) -> Dict[str, Any]:
    cfg = result.config
    return {
        "schema": FUZZ_SCHEMA,
        "created_unix": time.time(),
        "config": {
            "budget": cfg.budget,
            "seed": cfg.seed,
            "families": list(cfg.families),
            "policies": list(cfg.policies),
            "workers": cfg.workers,
            "horizon_cap": cfg.horizon_cap,
            "max_horizon_extensions": cfg.max_horizon_extensions,
            "horizon_extension_factor": cfg.horizon_extension_factor,
            "checkpoint": cfg.checkpoint,
            "max_counterexamples": cfg.max_counterexamples,
            "shrink": cfg.shrink,
            "corpus_dir": cfg.corpus_dir,
        },
        "instances": result.instances,
        "resumed_instances": result.resumed_instances,
        "corpus_promotion": {
            "added": list(result.promoted_entries),
            "skipped": list(result.promotion_skipped),
            "errors": [list(pair) for pair in result.promotion_errors],
        },
        "families": dict(result.family_counts),
        "oracles": {k: dict(v) for k, v in result.oracle_stats.items()},
        "family_oracles": {
            family: {oracle: dict(row) for oracle, row in per_oracle.items()}
            for family, per_oracle in result.family_oracle_stats.items()
        },
        "counterexamples": [
            _counterexample_doc(ce) for ce in result.counterexamples
        ],
        "timings": {k: round(v, 3) for k, v in result.timings.items()},
        "elapsed_seconds": round(result.elapsed_seconds, 3),
        "status": "ok" if result.ok else "fail",
    }


def validate_report_dict(doc: Dict[str, Any]) -> None:
    """Raise ``ValueError`` when ``doc`` is not a well-formed v2 report
    (used by the smoke tests and by consumers ingesting artefacts)."""
    if doc.get("schema") != FUZZ_SCHEMA:
        raise ValueError(f"unexpected schema {doc.get('schema')!r}")
    for key in ("config", "instances", "families", "oracles",
                "family_oracles", "counterexamples", "timings", "status"):
        if key not in doc:
            raise ValueError(f"report missing key {key!r}")
    if doc["status"] not in ("ok", "fail"):
        raise ValueError(f"bad status {doc['status']!r}")
    for name, row in doc["oracles"].items():
        for counter in COUNTERS:
            if not isinstance(row.get(counter), int):
                raise ValueError(f"oracle {name!r} missing {counter!r}")
    # the per-family breakdown must tile the overall counters exactly
    for name, row in doc["oracles"].items():
        for counter in COUNTERS:
            family_total = sum(
                per_oracle.get(name, {}).get(counter, 0)
                for per_oracle in doc["family_oracles"].values()
            )
            if family_total != row[counter]:
                raise ValueError(
                    f"family_oracles {counter!r} sum {family_total} != "
                    f"overall {name!r} counter {row[counter]}"
                )
    if "total_seconds" not in doc["timings"]:
        raise ValueError("timings missing 'total_seconds'")
    total_failed = sum(row["failed"] for row in doc["oracles"].values())
    # status tracks the failure counters; the counterexample list is
    # truncated to max_counterexamples, so it only bounds from below
    if (doc["status"] == "fail") != (total_failed > 0):
        raise ValueError("status inconsistent with oracle failure counts")
    if doc["counterexamples"] and doc["status"] != "fail":
        raise ValueError("counterexamples present in an 'ok' report")


def write_report(result: CampaignResult,
                 path: Union[str, Path] = "FUZZ_report.json") -> Path:
    path = Path(path)
    path.write_text(json.dumps(report_to_dict(result), indent=2,
                               sort_keys=True) + "\n")
    return path
