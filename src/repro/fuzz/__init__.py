"""Differential soundness fuzzing.

The paper's central claim is *soundness*: the eq. (11)/(16)/(17)
response-time bounds must dominate anything the token bus actually
does.  This subpackage adversarially tests that claim — and the
invariants the surrounding tooling relies on — by generating diverse
random network families at scale and cross-checking independent oracles
on every instance:

* analysis vs token-bus simulation (non-completing messages count
  *against* the bound);
* generic exact fixed-point path vs the ``repro.perf`` integer kernels
  (bit-equality);
* scenario JSON round-trip identity;
* the sweep layer vs an independent restatement of its scaling
  contract.

The per-instance oracles — above all the token-bus soundness
simulations, the dominant cost — run over the
:func:`repro.perf.batch.pooled_imap` process pool (``--workers N``), so
overnight budgets (10⁵+ instances) are feasible; a streaming JSONL
checkpoint (``--checkpoint``) lets an interrupted campaign resume with
identical counters.  Soundness runs whose horizon comes back
``incomplete`` are geometrically extended before a skip is ever
recorded.  Any failure is shrunk to a locally-minimal network before
being reported in ``FUZZ_report.json`` (schema ``profibus-rt/fuzz/v2``
in PERF.md, with per-(family × oracle) counters and a wall-clock phase
breakdown).  Front end: ``repro-cli fuzz --budget 200 --seed 0``.
"""

from .campaign import (
    COUNTERS,
    ORACLE_KERNEL,
    ORACLE_ROUNDTRIP,
    ORACLE_SOUNDNESS,
    ORACLE_SWEEP,
    ORACLES,
    CampaignConfig,
    CampaignResult,
    CounterExample,
    run_campaign,
)
from .families import FAMILIES, family_rng, generate_instance
from .oracles import (
    OracleOutcome,
    check_kernel_equivalence,
    check_roundtrip,
    check_soundness,
    check_sweep_scaling,
    reference_scaled_deadlines,
)
from .report import (
    FUZZ_SCHEMA,
    report_to_dict,
    validate_report_dict,
    write_report,
)
from .shrink import shrink_network

__all__ = [
    "COUNTERS",
    "CampaignConfig",
    "CampaignResult",
    "CounterExample",
    "FAMILIES",
    "FUZZ_SCHEMA",
    "ORACLES",
    "ORACLE_KERNEL",
    "ORACLE_ROUNDTRIP",
    "ORACLE_SOUNDNESS",
    "ORACLE_SWEEP",
    "OracleOutcome",
    "check_kernel_equivalence",
    "check_roundtrip",
    "check_soundness",
    "check_sweep_scaling",
    "family_rng",
    "generate_instance",
    "reference_scaled_deadlines",
    "report_to_dict",
    "run_campaign",
    "shrink_network",
    "validate_report_dict",
    "write_report",
]
