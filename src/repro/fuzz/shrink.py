"""Counterexample minimisation.

Given a failing network and a predicate ``fails(network) -> bool``, the
shrinker greedily applies reduction passes — drop a master, drop a
slave, drop a stream, then simplify the surviving streams' fields
(zero the jitter, default the cycle spec, relax ``D`` to ``T``, halve
``T``) and pull the TTR down toward the ring latency — keeping each
candidate only when it is still a valid network **and** still fails.

Passes repeat until a fixed point (or the evaluation budget runs out),
so the reported network is locally minimal: removing any single element
makes the failure disappear.  Everything is deterministic — no RNG — so
a shrink is reproducible from the original counterexample alone.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterator, List

from ..profibus.cycle import MessageCycleSpec
from ..profibus.network import Master, Network
from ..profibus.stream import MessageStream


def _with_masters(net: Network, masters) -> Network:
    return Network(masters=tuple(masters), slaves=net.slaves, phy=net.phy,
                   ttr=net.ttr)


def _replace_stream(net: Network, mi: int, si: int,
                    stream: MessageStream) -> Network:
    masters: List[Master] = list(net.masters)
    streams = list(masters[mi].streams)
    streams[si] = stream
    masters[mi] = masters[mi].with_streams(streams)
    return _with_masters(net, masters)


def _candidates(net: Network) -> Iterator[Network]:
    # 1. structural: drop a master / the slaves / a stream
    if len(net.masters) > 1:
        for i in range(len(net.masters)):
            yield _with_masters(net, net.masters[:i] + net.masters[i + 1:])
    if net.slaves:
        yield Network(masters=net.masters, slaves=(), phy=net.phy,
                      ttr=net.ttr)
    for mi, m in enumerate(net.masters):
        if len(m.streams) > (1 if len(net.masters) == 1 else 0):
            for si in range(len(m.streams)):
                masters = list(net.masters)
                masters[mi] = m.with_streams(
                    m.streams[:si] + m.streams[si + 1:]
                )
                yield _with_masters(net, masters)
    # 2. per-stream field simplification
    default_spec = MessageCycleSpec()
    for mi, m in enumerate(net.masters):
        for si, s in enumerate(m.streams):
            if s.J:
                yield _replace_stream(net, mi, si, replace(s, J=0))
            if s.C_bits is None and s.spec != default_spec:
                yield _replace_stream(net, mi, si,
                                      replace(s, spec=default_spec))
            if not s.high_priority:
                yield _replace_stream(net, mi, si,
                                      replace(s, high_priority=True))
            if s.D != s.T:
                yield _replace_stream(net, mi, si, replace(s, D=s.T))
            if s.T >= 4:
                half = s.T // 2
                yield _replace_stream(
                    net, mi, si,
                    replace(s, T=half, D=min(s.D, half), J=min(s.J, half)),
                )
    # 3. pull the TTR toward the ring latency
    if net.ttr is not None:
        ring = net.ring_latency()
        if net.ttr > ring:
            yield net.with_ttr(ring)
            mid = (net.ttr + ring) // 2
            if ring < mid < net.ttr:
                yield net.with_ttr(mid)


def _valid(net: Network) -> bool:
    if net.ttr is not None and net.ttr < net.ring_latency():
        return False
    return True


def shrink_network(
    network: Network,
    fails: Callable[[Network], bool],
    max_evals: int = 250,
) -> Network:
    """Smallest network the pass pipeline finds that still ``fails``.

    ``max_evals`` bounds predicate evaluations (each may run analyses or
    a simulation); on exhaustion the best network found so far is
    returned.  A candidate that makes the predicate *raise* is treated
    as not failing — the shrink must preserve the original defect, not
    trade it for an unrelated crash.
    """
    evals = 0

    def still_fails(candidate: Network) -> bool:
        nonlocal evals
        if evals >= max_evals:
            return False
        evals += 1
        try:
            return bool(fails(candidate))
        except Exception:
            return False

    current = network
    improved = True
    while improved and evals < max_evals:
        improved = False
        for candidate in _candidates(current):
            try:
                ok = _valid(candidate)
            except ValueError:
                continue
            if not ok:
                continue
            if still_fails(candidate):
                current = candidate
                improved = True
                break
    return current
