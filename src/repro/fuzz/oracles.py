"""The differential oracles a campaign cross-checks on every instance.

Four independent ways the toolbox can contradict itself, each cheap to
evaluate on one network:

* :func:`check_soundness` — eqs. (11)/(16)/(17) vs the token-bus
  simulator.  Releases that never complete inside the horizon are
  counted **against** the bound (see :mod:`repro.sim.validate`), not
  ignored — a network whose messages never finish cannot vacuously pass.
* :func:`check_kernel_equivalence` — the generic exact fixed-point path
  vs the ``repro.perf`` integer kernels vs the structure-of-arrays
  vector kernels (:mod:`repro.perf.vector`), three-way bit-equality on
  every per-stream response and on the batch-driver summaries.  The
  vector leg runs on whichever backend is active — numpy when
  importable, the pure-python fallback otherwise — so the oracle is
  meaningful on numpy-free machines too.
* :func:`check_roundtrip` — ``network_from_dict(network_to_dict(n))``
  must reproduce ``n`` exactly (and re-serialise to the same document).
* :func:`check_sweep_scaling` — the sweep layer vs an independent
  restatement of its documented contract: ``deadline_scale_sweep``
  scales every deadline to ``clamp(round(D·f), 1, T)``, and ``ttr_sweep``
  rounds (never truncates) float TTR grid values.

Each check returns an :class:`OracleOutcome` with status ``"ok"``,
``"fail"`` or ``"skipped"`` plus a human-readable detail string; the
campaign turns failures into shrunk counterexamples.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Sequence, Tuple

from ..perf import vector
from ..perf.batch import analyse_many
from ..perf.config import fast_path_disabled, set_fast_path
from ..profibus import sweep as sweep_mod
from ..profibus.network import Network
from ..profibus.serialization import network_from_dict, network_to_dict
from ..profibus.ttr import analyse
from ..sim.token import stream_key
from ..sim.traffic import ReleasePattern, TrafficConfig
from ..sim.validate import VERDICT_INCOMPLETE, VERDICT_MISSING, validate_network

DEFAULT_POLICIES: Tuple[str, ...] = ("fcfs", "dm", "edf")

STATUS_OK = "ok"
STATUS_FAIL = "fail"
STATUS_SKIPPED = "skipped"


@dataclass(frozen=True)
class OracleOutcome:
    status: str
    detail: str = ""
    #: how many horizon extensions the soundness auto-extender needed
    #: before the simulation produced a decisive answer (0 elsewhere)
    extensions: int = 0

    @property
    def failed(self) -> bool:
        return self.status == STATUS_FAIL


OK = OracleOutcome(STATUS_OK)


# --------------------------------------------------------------- soundness

def _jittered_traffic(network: Network, seed: int) -> TrafficConfig:
    """Synchronous release with each stream's own jitter active.  Seeds
    come from CRC32 of a stable string (not ``hash()``), so a
    counterexample reproduces under any ``PYTHONHASHSEED``."""
    patterns = {}
    for m in network.masters:
        for s in m.streams:
            patterns[TrafficConfig.key(m.name, s.name)] = ReleasePattern(
                period=s.T,
                offset=0,
                jitter=s.J,
                seed=zlib.crc32(f"{seed}:{m.name}:{s.name}".encode()),
            )
    return TrafficConfig(patterns)


def check_soundness(
    network: Network,
    policy: str,
    horizon_cap: int = 3_000_000,
    seed: int = 0,
    max_extensions: int = 4,
    extension_factor: float = 2.0,
) -> OracleOutcome:
    """Observed (or still-pending) responses must respect the analytic
    bounds wherever the analysis actually claims one.

    A bound is *claimed* for a stream when its **whole master** sits in
    the single-outstanding-request regime the paper's derivations assume
    — every high-priority stream of the master has a finite ``R`` with
    ``R + J ≤ T``.  The per-master condition matters because the §3/§4
    queues are shared per master: one backlogged stream (``R + J > T``)
    floods the FCFS queue / AP queue its neighbours wait in, so even a
    stream that individually satisfies ``R + J ≤ T`` can legitimately
    observe responses above its printed figure when a queue-mate is
    outside the regime (seed-0 ``multi-master-ring`` #1536 is a concrete
    instance, regression-tested).  Out-of-regime rows are not evidence
    of unsoundness — the paper claims nothing about them.

    The simulation horizon starts at ``min(required, horizon_cap)``
    (``required`` is the generous ``2·max R + 2·max(T+J) + 4·Tcycle +
    ring`` estimate).  A pending request's age is a valid lower bound on
    its eventual response at *any* horizon, so a truncated run can never
    fabricate an unsoundness — but it can leave claimed rows
    ``incomplete`` (releases, no completions).  Instead of skipping such
    a run, the auto-extender multiplies the horizon by
    ``extension_factor`` and retries, up to ``max_extensions`` times;
    only when the retry budget is exhausted does the check record a
    ``skipped`` outcome.  ``extensions`` on the returned outcome counts
    the retries actually used.
    """
    analysis = analyse(network, policy)
    finite = [sr.R for sr in analysis.per_stream if sr.R is not None]
    max_r = max(finite, default=0)
    max_tj = max(
        (s.T + s.J for m in network.masters for s in m.streams), default=1
    )
    required = (2 * max_r + 2 * max_tj + 4 * analysis.tcycle
                + network.ring_latency())
    horizon = min(required, horizon_cap)
    traffic = _jittered_traffic(network, seed)
    master_of = {
        stream_key(sr.master, sr.stream.name): sr.master
        for sr in analysis.per_stream
    }
    master_in_regime: dict = {}
    for sr in analysis.per_stream:
        in_regime = (sr.R is not None
                     and sr.R + sr.stream.J <= sr.stream.T)
        master_in_regime[sr.master] = (
            master_in_regime.get(sr.master, True) and in_regime
        )
    extensions = 0
    while True:
        report = validate_network(network, policy, horizon, traffic=traffic)
        bad = []
        incomplete = 0
        for row in report.rows:
            if row.verdict == VERDICT_MISSING:
                # no sim statistics for an analysed stream: a harness
                # defect, never a vacuous pass
                bad.append(row)
                continue
            if row.bound is None:
                continue
            if not master_in_regime[master_of[row.name]]:
                continue  # outside the regime the bound models
            if row.verdict == VERDICT_INCOMPLETE:
                incomplete += 1
            elif not row.sound:
                bad.append(row)
        if bad:
            detail = "; ".join(
                f"{r.name}: {r.verdict} observed={r.effective_observed} "
                f"bound={r.bound} completed={r.completed}/{r.released}"
                for r in bad[:4]
            )
            return OracleOutcome(
                STATUS_FAIL, f"policy={policy} horizon={horizon}: {detail}",
                extensions=extensions,
            )
        if not incomplete:
            return OracleOutcome(STATUS_OK, extensions=extensions)
        if extensions >= max_extensions:
            return OracleOutcome(
                STATUS_SKIPPED,
                f"policy={policy}: {incomplete} stream(s) still incomplete "
                f"at horizon {horizon} after {extensions} extension(s)",
                extensions=extensions,
            )
        extensions += 1
        horizon = int(horizon * extension_factor)


# ------------------------------------------------------- kernel equivalence

def _rows_diff(g_rows, other_rows):
    if len(g_rows) != len(other_rows):
        return (g_rows, other_rows)
    return next(
        ((a, b) for a, b in zip(g_rows, other_rows) if a != b), None
    )


def check_kernel_equivalence(
    network: Network,
    policies: Sequence[str] = DEFAULT_POLICIES,
) -> OracleOutcome:
    """Generic exact path vs the ``repro.perf`` scalar kernels vs the
    vector kernels — three-way bit-equality on per-stream responses,
    ``Tcycle`` and the batch-driver summaries."""
    for policy in policies:
        with fast_path_disabled():
            generic = analyse(network, policy)
        previous = set_fast_path(True)
        try:
            fast = analyse(network, policy)
        finally:
            set_fast_path(previous)
        if generic.tcycle != fast.tcycle:
            return OracleOutcome(
                STATUS_FAIL,
                f"policy={policy}: tcycle generic={generic.tcycle} "
                f"fast={fast.tcycle}",
            )
        g_rows = [(sr.master, sr.stream.name, sr.R)
                  for sr in generic.per_stream]
        f_rows = [(sr.master, sr.stream.name, sr.R) for sr in fast.per_stream]
        diff = _rows_diff(g_rows, f_rows)
        if diff is not None:
            return OracleOutcome(
                STATUS_FAIL, f"policy={policy}: per-stream R diverge: {diff}"
            )
        # Third leg: the SoA vector kernels.  An engine crash is its own
        # failure (prefixed ``vectorized:``), not an abort of the oracle.
        try:
            vec = vector.response_rows(network, policy)
        except Exception as exc:  # noqa: BLE001 - any engine defect counts
            return OracleOutcome(
                STATUS_FAIL,
                f"vectorized: policy={policy} "
                f"[{vector.backend_name()} backend] "
                f"{type(exc).__name__}: {exc}",
            )
        if vec["tcycle"] != generic.tcycle:
            return OracleOutcome(
                STATUS_FAIL,
                f"vectorized: policy={policy}: tcycle "
                f"generic={generic.tcycle} vectorized={vec['tcycle']}",
            )
        v_rows = [tuple(row) for row in vec["rows"]]
        diff = _rows_diff(g_rows, v_rows)
        if diff is not None:
            return OracleOutcome(
                STATUS_FAIL,
                f"vectorized: policy={policy} "
                f"[{vector.backend_name()} backend] "
                f"per-stream R diverge: {diff}",
            )
    previous = set_fast_path(True)
    try:
        fast_batch = analyse_many([network], policies, workers=1)
    finally:
        set_fast_path(previous)
    with fast_path_disabled():
        generic_batch = analyse_many([network], policies, workers=1)
    if fast_batch != generic_batch:
        diff = next(
            (a, b) for a, b in zip(generic_batch, fast_batch) if a != b
        )
        return OracleOutcome(STATUS_FAIL, f"batch summaries diverge: {diff}")
    try:
        vec_batch = analyse_many([network], policies, workers=1,
                                 mode="vectorized")
    except Exception as exc:  # noqa: BLE001 - any engine defect counts
        return OracleOutcome(
            STATUS_FAIL,
            f"vectorized: batch driver [{vector.backend_name()} backend] "
            f"{type(exc).__name__}: {exc}",
        )
    if vec_batch != generic_batch:
        diff = next(
            (a, b) for a, b in zip(generic_batch, vec_batch) if a != b
        )
        return OracleOutcome(
            STATUS_FAIL,
            f"vectorized: batch summaries diverge "
            f"[{vector.backend_name()} backend]: {diff}",
        )
    return OK


# --------------------------------------------------------------- round-trip

def check_roundtrip(network: Network) -> OracleOutcome:
    """``network_from_dict(network_to_dict(n)) == n``, and the document
    itself must be a fixed point of a second round trip."""
    doc = network_to_dict(network)
    rebuilt = network_from_dict(doc)
    if rebuilt != network:
        return OracleOutcome(
            STATUS_FAIL, f"round-trip network mismatch: {_first_diff(network, rebuilt)}"
        )
    doc2 = network_to_dict(rebuilt)
    if doc2 != doc:
        return OracleOutcome(STATUS_FAIL, "round-trip document not a fixed point")
    return OK


def _first_diff(a: Network, b: Network) -> str:
    if a.phy != b.phy:
        return f"phy {a.phy} != {b.phy}"
    if a.ttr != b.ttr:
        return f"ttr {a.ttr} != {b.ttr}"
    if a.slaves != b.slaves:
        return "slaves differ"
    for ma, mb in zip(a.masters, b.masters):
        for sa, sb in zip(ma.streams, mb.streams):
            if sa != sb:
                return f"stream {ma.name}/{sa.name}: {sa} != {sb}"
        if ma != mb:
            return f"master {ma.name} differs"
    return "structure differs"


# ------------------------------------------------------------ sweep scaling

def reference_scaled_deadlines(network: Network, factor: float):
    """Independent restatement of the ``deadline_scale_sweep`` contract:
    every deadline becomes ``clamp(round(D·factor), 1, T)`` (rounded,
    never truncated — truncation shifted E5 acceptance curves on fine
    factor grids)."""
    return [
        max(1, min(s.T, int(round(s.D * factor))))
        for m in network.masters
        for s in m.streams
    ]


def check_sweep_scaling(
    network: Network, factor: float, policy: str = "dm"
) -> OracleOutcome:
    """The sweep layer vs the reference contract.

    Checks (1) the deadlines ``_scale_deadlines`` actually produces, (2)
    that a one-point ``deadline_scale_sweep`` row agrees with directly
    analysing the reference-scaled network, and (3) that ``ttr_sweep``
    rounds a fractional TTR grid value instead of truncating it.
    """
    scaled = sweep_mod._scale_deadlines(network, factor)
    got = [s.D for m in scaled.masters for s in m.streams]
    want = reference_scaled_deadlines(network, factor)
    if got != want:
        mismatch = next(
            (i, g, w) for i, (g, w) in enumerate(zip(got, want)) if g != w
        )
        return OracleOutcome(
            STATUS_FAIL,
            f"factor={factor}: stream #{mismatch[0]} deadline "
            f"{mismatch[1]} != reference {mismatch[2]}",
        )

    rows = sweep_mod.deadline_scale_sweep(network, [factor],
                                          policies=(policy,))
    masters = []
    it = iter(want)
    for m in network.masters:
        masters.append(
            m.with_streams([s.with_deadline(next(it)) for s in m.streams])
        )
    reference = Network(masters=tuple(masters), slaves=network.slaves,
                        phy=network.phy, ttr=network.ttr)
    expected = analyse(reference, policy)
    if (rows[0].schedulable, rows[0].tcycle) != (
        expected.schedulable, expected.tcycle
    ):
        return OracleOutcome(
            STATUS_FAIL,
            f"factor={factor} policy={policy}: sweep row "
            f"(sched={rows[0].schedulable}, tcycle={rows[0].tcycle}) != "
            f"analysis of reference scaling "
            f"(sched={expected.schedulable}, tcycle={expected.tcycle})",
        )

    fractional = network.require_ttr() + 0.5
    ttr_rows = sweep_mod.ttr_sweep(network, [fractional], policies=(policy,))
    expected_ttr = int(round(fractional))
    if expected_ttr >= network.ring_latency():
        expected_tc = analyse(network, policy, ttr=expected_ttr).tcycle
        if ttr_rows[0].tcycle != expected_tc:
            return OracleOutcome(
                STATUS_FAIL,
                f"ttr_sweep({fractional}) analysed tcycle="
                f"{ttr_rows[0].tcycle}, rounding reference gives {expected_tc}",
            )
    return OK
