"""E8 — Extensions beyond the paper (DESIGN.md §5 ablations).

Artefacts:
* guaranteed low-priority bandwidth at each policy's maximum TTR — the
  operational payoff of the §5 claim;
* GAP ring maintenance: simulated rotations stay within the gap-aware
  eq. (14) bound, and the bound only grows when gap polls are the
  longest cycles a master can start;
* critical scaling factors: how much extra load each §2 test tolerates
  on the worked example;
* refined vs aggregate Tdel (eq. (13)) across random networks.
"""

from fractions import Fraction

import pytest

from conftest import print_table
from repro.core import (
    assign_deadline_monotonic,
    critical_scaling_factor,
    make_taskset,
    nonpreemptive_rta,
    preemptive_rta,
    processor_demand_test,
)
from repro.gen import random_network
from repro.profibus import (
    bandwidth_advantage,
    gap_aware_tcycle,
    low_priority_bandwidth,
    max_feasible_ttr,
    tcycle,
    tdel,
    tdel_refined,
)
from repro.profibus.timing import longest_cycle
from repro.sim import TokenBusConfig, simulate_token_bus


def test_e8_bandwidth_payoff(factory_cell, benchmark):
    adv = benchmark.pedantic(
        lambda: bandwidth_advantage(factory_cell), rounds=2, iterations=1
    )
    rows = []
    for policy, frac in adv.items():
        best = max_feasible_ttr(factory_cell, policy)
        rows.append((
            policy,
            best if best is not None else "-",
            f"{frac * 100:.1f}%" if frac is not None else "-",
        ))
    print_table(
        "E8.a guaranteed low-priority bandwidth at max feasible TTR",
        ("policy", "max TTR (bits)", "low-priority share"),
        rows,
    )
    assert adv["dm"] > adv["fcfs"]


def test_e8_gap_maintenance(factory_cell, benchmark):
    lap = {m.name: longest_cycle(m, factory_cell.phy)
           for m in factory_cell.masters}
    rows = []
    for g in (None, 10, 3, 1):
        cfg = TokenBusConfig(low_always_pending=lap, gap_update_factor=g)
        res = simulate_token_bus(factory_cell, 1_500_000, config=cfg)
        polls = sum(ms.gap_polls for ms in res.masters.values())
        bound = gap_aware_tcycle(factory_cell)
        rows.append((
            g if g is not None else "off",
            polls,
            res.max_trr,
            bound,
            res.max_trr <= bound,
        ))
        assert res.max_trr <= bound
    print_table(
        "E8.b GAP maintenance vs the gap-aware eq. (14) bound",
        ("gap factor G", "polls", "max TRR", "bound", "sound"),
        rows,
    )
    benchmark.pedantic(
        lambda: simulate_token_bus(
            factory_cell, 500_000,
            config=TokenBusConfig(gap_update_factor=3),
        ),
        rounds=2, iterations=1,
    )


def test_e8_critical_scaling(benchmark):
    ts = make_taskset([(1, 4), (2, 6), (3, 10)])
    tests = {
        "FP preemptive RTA": lambda s: preemptive_rta(
            assign_deadline_monotonic(s)).schedulable,
        "FP non-preemptive RTA": lambda s: nonpreemptive_rta(
            assign_deadline_monotonic(s)).schedulable,
        "EDF demand (eq. 3)": lambda s: processor_demand_test(s).schedulable,
    }
    rows = []
    for name, pred in tests.items():
        alpha = critical_scaling_factor(ts, pred, precision=Fraction(1, 64))
        rows.append((
            name,
            f"{float(alpha):.3f}" if alpha else "-",
            f"{float(alpha) * ts.utilization:.3f}" if alpha else "-",
        ))
    print_table(
        "E8.c critical scaling factor, worked example (U = 0.883)",
        ("test", "alpha", "breakdown U"),
        rows,
    )
    # EDF tolerates at least as much scaling as fixed priority
    assert float(rows[2][1]) >= float(rows[0][1]) - 1e-9
    benchmark(lambda: critical_scaling_factor(
        ts, tests["EDF demand (eq. 3)"], precision=Fraction(1, 16)))


def test_e8_refined_tdel_gain(benchmark):
    rows = []
    gains = []
    for seed in range(10):
        net = random_network(n_masters=4, streams_per_master=3,
                             seed=seed, low_priority_streams=2)
        agg, ref = tdel(net), tdel_refined(net)
        gain = (agg - ref) / agg if agg else 0.0
        gains.append(gain)
        rows.append((seed, agg, ref, f"{gain * 100:.1f}%"))
    print_table(
        "E8.d eq. (13) aggregate vs refined Tdel on random networks",
        ("seed", "Tdel eq13", "Tdel refined", "gain"),
        rows,
    )
    assert all(g >= 0 for g in gains)
    benchmark(lambda: [tdel_refined(random_network(seed=s)) for s in range(3)])
