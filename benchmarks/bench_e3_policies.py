"""E3 — The headline claim (§4.3/§5): FCFS vs DM vs EDF message bounds.

Artefacts:
* per-stream worst-case response times under the three policies on the
  factory cell (eq. 11 vs eq. 16 vs eqs. 17-18);
* maximum feasible TTR per policy (the low-priority bandwidth angle);
* the paper-form eq. (16) recursion vs the Tindell form (ablation);
* analysis cost per policy.
"""

import pytest

from conftest import print_table
from repro.profibus import (
    analyse,
    dm_analysis,
    dm_response_time_paper_form,
    edf_analysis,
    fcfs_analysis,
    tcycle,
    ttr_advantage,
)


def test_e3_policy_response_table(factory_cell, benchmark):
    results = {p: analyse(factory_cell, p) for p in ("fcfs", "dm", "edf")}
    phy = factory_cell.phy
    rows = []
    for sr in results["fcfs"].per_stream:
        key = (sr.master, sr.stream.name)
        row = [f"{sr.master}/{sr.stream.name}", f"{phy.ms(sr.stream.D):.1f}"]
        for p in ("fcfs", "dm", "edf"):
            r = results[p].response(*key)
            row.append(f"{phy.ms(r.R):.1f}" + ("" if r.schedulable else "*"))
        rows.append(tuple(row))
    print_table(
        "E3.a worst-case response times in ms (* = miss), factory cell",
        ("stream", "D", "FCFS", "DM", "EDF"),
        rows,
    )
    assert not results["fcfs"].schedulable
    assert results["dm"].schedulable and results["edf"].schedulable
    benchmark(lambda: analyse(factory_cell, "edf"))


def test_e3_ttr_advantage(factory_cell, single_master, benchmark):
    rows = []
    for name, net in (("factory-cell", factory_cell),
                      ("single-master", single_master)):
        adv = ttr_advantage(net)
        fcfs = adv["fcfs"] or 0
        rows.append((
            name,
            adv["fcfs"],
            adv["dm"],
            adv["edf"],
            f"{adv['dm'] / fcfs:.1f}x" if fcfs else "inf",
        ))
    print_table(
        "E3.b maximum feasible TTR per policy (bits)",
        ("network", "FCFS", "DM", "EDF", "DM/FCFS"),
        rows,
    )
    for row in rows:
        assert row[2] >= (row[1] or 0)
    benchmark.pedantic(lambda: ttr_advantage(single_master), rounds=3,
                       iterations=1)


def test_e3_paper_form_ablation(single_master, benchmark):
    master = single_master.masters[0]
    tc = tcycle(single_master)
    ours = {sr.stream.name: sr.R for sr in dm_analysis(single_master).per_stream}
    rows = []
    for s in master.high_streams:
        paper = dm_response_time_paper_form(master, tc, s.name)
        rows.append((s.name, ours[s.name], paper, ours[s.name] - paper))
    print_table(
        "E3.c eq. (16) printed form vs Tindell form (bits)",
        ("stream", "Tindell R", "paper-form R", "delta"),
        rows,
    )
    # the printed form is optimistic by up to one blocking + own cycle
    assert all(r[3] >= 0 for r in rows)
    benchmark(lambda: dm_analysis(single_master))


def test_e3_analysis_cost(factory_cell, benchmark):
    def run_all():
        return (
            fcfs_analysis(factory_cell),
            dm_analysis(factory_cell),
            edf_analysis(factory_cell),
        )

    f, d, e = benchmark(run_all)
    assert f.tcycle == d.tcycle == e.tcycle
