"""E2 — FCFS analysis (eqs. (11)-(12)) and TTR setting (eq. (15)).

Artefacts:
* per-stream FCFS worst-case response times on the factory cell;
* the eq. (15) maximum TTR and the feasibility flip exactly one bit-time
  above it;
* R as a function of TTR (the linear dependence the paper exploits).
"""

import pytest

from conftest import print_table
from repro.profibus import fcfs_analysis, fcfs_max_feasible_ttr, tdel


def test_e2_fcfs_response_table(factory_cell, benchmark):
    res = benchmark(lambda: fcfs_analysis(factory_cell))
    phy = factory_cell.phy
    rows = [
        (
            f"{sr.master}/{sr.stream.name}",
            sr.R,
            f"{phy.ms(sr.R):.2f}",
            f"{phy.ms(sr.stream.D):.2f}",
            "ok" if sr.schedulable else "MISS",
        )
        for sr in res.per_stream
    ]
    print_table(
        "E2.a FCFS worst-case response times (eq. 11), factory cell",
        ("stream", "R bits", "R ms", "D ms", "verdict"),
        rows,
    )
    assert not res.schedulable  # the reference point: FCFS misses


def test_e2_ttr_setting(factory_cell, benchmark):
    best = benchmark(lambda: fcfs_max_feasible_ttr(factory_cell))
    rows = []
    for ttr in (best - 500, best, best + 1, best + 500):
        ok = fcfs_analysis(factory_cell, ttr=ttr).schedulable
        rows.append((ttr, "yes" if ok else "no"))
    print_table(
        f"E2.b eq. (15) TTR setting (max feasible = {best})",
        ("TTR", "FCFS schedulable"),
        rows,
    )
    assert fcfs_analysis(factory_cell, ttr=best).schedulable
    assert not fcfs_analysis(factory_cell, ttr=best + 1).schedulable


def test_e2_r_linear_in_ttr(factory_cell, benchmark):
    base = tdel(factory_cell)
    rows = []
    lat = factory_cell.ring_latency()
    for ttr in (lat, 1000, 2000, 4000, 8000):
        res = fcfs_analysis(factory_cell, ttr=ttr)
        sr = res.response("cell", "axis-setpoint")
        rows.append((ttr, ttr + base, sr.R, sr.R // (ttr + base)))
    print_table(
        "E2.c R(axis-setpoint) vs TTR — R = nh · (TTR + Tdel)",
        ("TTR", "Tcycle", "R", "R/Tcycle (= nh)"),
        rows,
    )
    assert all(r[3] == 3 for r in rows)  # nh = 3 on the cell master
    benchmark(lambda: fcfs_analysis(factory_cell, ttr=4000))
