"""E7 — End-to-end delay with release jitter (§4.1-4.2).

Artefacts:
* sender-task response times → inherited message release jitter for the
  two task models;
* E = g + Q + C + d per stream under DM and EDF dispatching;
* jitter sensitivity: how the message bound degrades as sender load
  (hence jitter) grows.
"""

import pytest

from conftest import print_table
from repro.apsched import TaskModel, end_to_end_analysis, sender_response_times
from repro.core import Task
from repro.profibus import dm_analysis


def _cell_model(load: float = 1.0) -> TaskModel:
    ms = 1500
    return TaskModel(
        sender_tasks={
            "axis-setpoint": Task(C=max(1, int(0.2 * ms * load)),
                                  T=50 * ms, D=4 * ms, name="snd-axis"),
            "alarm-poll": Task(C=max(1, int(0.4 * ms * load)),
                               T=80 * ms, D=8 * ms, name="snd-alarm"),
            "cell-status": Task(C=max(1, int(1.0 * ms * load)),
                                T=100 * ms, D=40 * ms, name="snd-status"),
        },
        scheduler="fp",
    )


def test_e7_jitter_inheritance(factory_cell, benchmark):
    model = _cell_model()
    responses = benchmark(lambda: sender_response_times(model))
    rows = [(stream, r) for stream, r in responses.items()]
    print_table(
        "E7.a sender response times = message release jitter (bits)",
        ("stream", "J = R_sender"),
        rows,
    )
    assert all(r is not None for _, r in rows)


@pytest.mark.parametrize("policy", ["dm", "edf"])
def test_e7_end_to_end_table(factory_cell, policy, benchmark):
    report = benchmark.pedantic(
        lambda: end_to_end_analysis(
            factory_cell, {"cell": _cell_model()}, policy=policy,
            delivery_delays={"cell/axis-setpoint": 150},
        ),
        rounds=2, iterations=1,
    )
    rows = [
        (f"{r.master}/{r.stream}", r.g, r.qc, r.d, r.total)
        for r in report.rows
        if r.master == "cell"
    ]
    print_table(
        f"E7.b end-to-end bounds E = g + Q+C + d ({policy}, bits)",
        ("stream", "g", "Q+C", "d", "E"),
        rows,
    )
    assert report.all_bounded


def test_e7_jitter_sensitivity(factory_cell, benchmark):
    plain = dm_analysis(factory_cell)
    rows = []
    for load in (0.5, 1.0, 2.0, 4.0):
        rep = end_to_end_analysis(
            factory_cell, {"cell": _cell_model(load)}, policy="dm"
        )
        r = rep.row("cell", "cell-status")
        rows.append((load, r.g, r.qc))
    print_table(
        "E7.c sender load vs inherited jitter vs message bound (cell-status)",
        ("sender load", "g (jitter)", "Q+C"),
        rows,
    )
    # jitter grows with load; the message bound never shrinks
    assert all(a[1] <= b[1] for a, b in zip(rows, rows[1:]))
    assert all(a[2] <= b[2] for a, b in zip(rows, rows[1:]))
    base = plain.response("cell", "cell-status").R
    assert all(r[2] >= base for r in rows)
    benchmark.pedantic(
        lambda: end_to_end_analysis(
            factory_cell, {"cell": _cell_model(2.0)}, policy="dm"
        ),
        rounds=2, iterations=1,
    )
