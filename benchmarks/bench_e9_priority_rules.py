"""E9 — Priority-rule ablation under release jitter (extension).

The paper's §4 fixes DM (or EDF) for the AP queue.  With task-inherited
release jitter (§4.1) DM is no longer the optimal fixed-priority rule;
(D−J)-monotonic is, and Audsley's OPA dominates every fixed rule.  This
bench quantifies the gap on random jittered scenarios.
"""

import random

import pytest

from conftest import print_table
from repro.profibus import (
    Master,
    MessageStream,
    Network,
    PhyParameters,
    djm_analysis,
    dm_analysis,
    edf_analysis,
    opa_analysis,
)

N = 40


def _random_jittered_net(seed: int) -> Network:
    rng = random.Random(seed)
    phy = PhyParameters()
    streams = []
    for i in range(rng.randint(3, 4)):
        T = rng.randint(20, 60) * 1000
        J = rng.choice([0, 0, rng.randint(1, 6) * 1000])
        D = min(T, rng.randint(3, 12) * 1000 + J)
        streams.append(MessageStream(f"s{i}", T=T, D=D, J=J, C_bits=500))
    return Network(masters=(Master(1, tuple(streams)),), phy=phy, ttr=500)


def test_e9_rule_acceptance(benchmark):
    counts = {"dm": 0, "djm": 0, "opa": 0, "edf": 0}
    dm_fail_djm_ok = 0
    for seed in range(N):
        net = _random_jittered_net(seed)
        dm = dm_analysis(net).schedulable
        dj = djm_analysis(net).schedulable
        opa = opa_analysis(net).schedulable
        edf = edf_analysis(net).schedulable
        counts["dm"] += dm
        counts["djm"] += dj
        counts["opa"] += opa
        counts["edf"] += edf
        if not dm and dj:
            dm_fail_djm_ok += 1
        # dominance invariants
        assert not dj or opa
        assert not dm or opa
    rows = [(rule, f"{c}/{N}") for rule, c in counts.items()]
    rows.append(("DM fails, DJM passes", dm_fail_djm_ok))
    print_table(
        "E9 acceptance under release jitter, per AP priority rule",
        ("rule", "schedulable"),
        rows,
    )
    assert counts["djm"] >= counts["dm"]
    assert counts["opa"] >= counts["djm"]
    assert dm_fail_djm_ok > 0  # the jitter effect has content
    benchmark.pedantic(
        lambda: [opa_analysis(_random_jittered_net(s)) for s in range(5)],
        rounds=2, iterations=1,
    )


def test_e9_witness_detail(benchmark):
    """Per-stream view of the pinned DM-fails/DJM-passes witness."""
    phy = PhyParameters()
    net = Network(masters=(Master(1, (
        MessageStream("s0", T=59_000, D=5_000, J=0, C_bits=500),
        MessageStream("s1", T=31_000, D=8_000, J=0, C_bits=500),
        MessageStream("s2", T=52_000, D=8_000, J=4_000, C_bits=500),
        MessageStream("s3", T=41_000, D=8_000, J=5_000, C_bits=500),
    )),), phy=phy, ttr=500)
    dm = dm_analysis(net)
    dj = djm_analysis(net)
    rows = []
    for sr_dm, sr_dj in zip(dm.per_stream, dj.per_stream):
        s = sr_dm.stream
        rows.append((
            s.name, s.D, s.J,
            sr_dm.R if sr_dm.R is not None else "miss",
            sr_dj.R if sr_dj.R is not None else "miss",
        ))
    print_table(
        "E9.b witness: DM vs (D−J)-monotonic responses (bits)",
        ("stream", "D", "J", "R (DM)", "R (DJM)"),
        rows,
    )
    assert not dm.schedulable and dj.schedulable
    benchmark(lambda: djm_analysis(net))
