"""E5 — Acceptance ratio vs deadline tightness: the §5 claim at scale.

For each deadline-tightness level ``x`` (deadlines drawn in
``[0.6x·T, x·T]``), generate random 3-master networks with a minimal TTR
and report the fraction schedulable per policy.  The expected shape:
everyone passes at loose deadlines, FCFS decays first as deadlines
tighten, the priority policies hold on longest, and everything dies at
extreme tightness — "priority-based dispatching allows the support of
messages with more tight deadlines", quantified.
"""

import pytest

from conftest import print_table
from repro.perf.batch import acceptance_curve

N_PER_POINT = 12
TIGHTNESS = (1.0, 0.5, 0.3, 0.2, 0.12, 0.07)


def _acceptance(d_over_t_max: float):
    return acceptance_curve(
        (d_over_t_max,), N_PER_POINT, workers=1
    )[d_over_t_max]


def test_e5_acceptance_ratio(benchmark):
    rows = []
    raw = acceptance_curve(TIGHTNESS, N_PER_POINT, workers=1)
    for tight in TIGHTNESS:
        counts = raw[tight]
        rows.append((
            tight,
            f"{counts['fcfs'] / N_PER_POINT:.2f}",
            f"{counts['dm'] / N_PER_POINT:.2f}",
            f"{counts['edf'] / N_PER_POINT:.2f}",
        ))
    print_table(
        f"E5 acceptance ratio vs deadline tightness (n={N_PER_POINT}/point)",
        ("max D/T", "FCFS", "DM", "EDF"),
        rows,
    )
    # dominance at every point
    for tight, counts in raw.items():
        assert counts["dm"] >= counts["fcfs"]
        assert counts["edf"] >= counts["fcfs"]
    # the claim has content: the priority policies strictly win somewhere
    assert any(c["dm"] > c["fcfs"] for c in raw.values())
    # and the curve decays: loose deadlines accept more than tight ones
    assert raw[TIGHTNESS[0]]["fcfs"] > raw[TIGHTNESS[-1]]["fcfs"]
    assert raw[TIGHTNESS[0]]["dm"] > raw[TIGHTNESS[-1]]["dm"]
    benchmark.pedantic(lambda: _acceptance(0.3), rounds=1, iterations=1)
