"""E4 — Analytic bounds vs the token-bus simulator.

Artefacts:
* per-policy soundness (observed ≤ bound for every stream) and tightness
  (observed/bound) on the factory cell under synchronous phasing;
* the stack-depth ablation: the §4 architecture demands a 1-deep stack;
  deeper FCFS stacks re-introduce priority inversion for the tightest
  stream;
* simulator throughput (events/second scale).
"""

import pytest

from conftest import print_table
from repro.sim import TokenBusConfig, simulate_token_bus, validate_network

HORIZON = 2_000_000


@pytest.mark.parametrize("policy", ["fcfs", "dm", "edf"])
def test_e4_soundness(factory_cell, policy, benchmark):
    report = benchmark.pedantic(
        lambda: validate_network(factory_cell, policy, horizon=HORIZON),
        rounds=2, iterations=1,
    )
    rows = [
        (
            row.name,
            row.bound,
            row.observed,
            f"{row.tightness:.2f}" if row.tightness else "-",
            "yes" if row.sound else "NO",
        )
        for row in report.rows
    ]
    print_table(
        f"E4.a bound vs observed ({policy}, synchronous phasing)",
        ("stream", "bound", "observed", "tightness", "sound"),
        rows,
    )
    assert report.all_sound


def test_e4_stack_depth_ablation(single_master, benchmark):
    from repro.profibus import stack_depth_analysis

    rows = []
    for depth in (1, 2, 4, 8):
        cfg = TokenBusConfig(policy="ap-dm", stack_depth=depth)
        res = simulate_token_bus(single_master, HORIZON, config=cfg)
        tight = res.stream("M1", "s0")
        analysis = stack_depth_analysis(single_master, depth)
        bound = analysis.response("M1", "s0").R
        rows.append((
            depth,
            bound,
            tight.max_response,
            tight.missed,
            "yes" if analysis.schedulable else "no",
        ))
        assert bound is None or tight.max_response <= bound
    print_table(
        "E4.b stack-depth ablation — tightest stream under AP-DM",
        ("stack depth", "analytic bound", "observed max", "misses",
         "analysis schedulable"),
        rows,
    )
    # depth 1 (the paper's architecture) is the best configuration
    assert rows[0][2] == min(r[2] for r in rows)
    benchmark.pedantic(
        lambda: simulate_token_bus(
            single_master, HORIZON, config=TokenBusConfig(policy="ap-dm")
        ),
        rounds=2, iterations=1,
    )


def test_e4_simulator_throughput(factory_cell, benchmark):
    res = benchmark(lambda: simulate_token_bus(factory_cell, 500_000))
    assert res.events > 100
