"""E1 — Token-cycle bound (eqs. (13)-(14)) and the §3.3 illustration.

Artefacts:
* the Tdel/Tcycle breakdown for the reference networks (aggregate vs
  refined bound, ring latency);
* simulated maximum token-rotation time vs the eq. (14) bound, warm and
  cold start (the DESIGN.md cold-start finding);
* timing of the analysis itself (trivially fast — the point of a
  pre-run-time test).
"""

import pytest

from conftest import print_table
from repro.profibus import tcycle, tdel, tdel_refined, token_cycle_report
from repro.profibus.timing import longest_cycle
from repro.sim import TokenBusConfig, simulate_token_bus


def test_e1_breakdown_table(factory_cell, illustration, single_master, benchmark):
    nets = {
        "factory-cell": factory_cell,
        "illustration": illustration,
        "single-master": single_master,
    }
    rows = []
    for name, net in nets.items():
        rep = token_cycle_report(net)
        rows.append((
            name,
            rep.ring_latency,
            rep.ttr,
            rep.tdel_aggregate,
            rep.tdel_refined,
            rep.tcycle_aggregate,
            rep.tcycle_refined,
        ))
    print_table(
        "E1.a token-cycle breakdown (bit times)",
        ("network", "ring", "TTR", "Tdel eq13", "Tdel refined",
         "Tcycle eq14", "Tcycle refined"),
        rows,
    )
    benchmark(lambda: [token_cycle_report(net) for net in nets.values()])


def test_e1_sim_vs_bound(factory_cell, benchmark):
    from repro.gen import network_with_ttr_headroom, random_network

    # the DESIGN.md cold-start network: a phasing where the paper's own
    # TRR←0 initialisation pushes one rotation past the eq. (14) bound
    cold_net = network_with_ttr_headroom(
        random_network(n_masters=4, streams_per_master=3, seed=1)
    )
    horizon = 2_000_000

    def run(net, warm):
        lap = {m.name: longest_cycle(m, net.phy) for m in net.masters}
        cfg = TokenBusConfig(low_always_pending=lap, warm_start=warm)
        return simulate_token_bus(net, horizon, config=cfg)

    rows = []
    for name, net in (("factory-cell", factory_cell),
                      ("cold-start net", cold_net)):
        bound = tcycle(net)
        warm = run(net, True)
        cold = run(net, False)
        rows.append((name, "warm", warm.max_trr, bound,
                     warm.max_trr <= bound))
        rows.append((name, "cold (paper init)", cold.max_trr, bound,
                     cold.max_trr <= bound))
        assert warm.max_trr <= bound
    print_table(
        "E1.b max observed TRR vs eq. (14) bound (saturating lows)",
        ("network", "start", "max TRR", "bound", "sound"),
        rows,
    )
    # the documented finding: cold start exceeds the bound on this net,
    # by at most one ring latency
    assert rows[3][2] > rows[3][3]
    assert rows[3][2] <= rows[3][3] + cold_net.ring_latency()
    benchmark.pedantic(lambda: run(factory_cell, True), rounds=2, iterations=1)


def test_e1_analysis_speed(factory_cell, benchmark):
    result = benchmark(lambda: (tdel(factory_cell), tdel_refined(factory_cell)))
    assert result[1] <= result[0]
