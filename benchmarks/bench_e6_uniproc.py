"""E6 — §2 survey cross-validation on the uniprocessor.

Artefacts:
* the worked example's response times under all four regimes, analysis
  vs simulation;
* agreement matrix between the feasibility tests (utilisation, demand,
  QPA, Zheng-Shin, George) over random task sets;
* analysis cost: exhaustive demand test vs QPA checked points.
"""

import pytest

from conftest import print_table
from repro.core import (
    assign_deadline_monotonic,
    edf_rta,
    george_test,
    make_taskset,
    nonpreemptive_rta,
    preemptive_rta,
    processor_demand_test,
    qpa_test,
    zheng_shin_test,
)
from repro.gen import random_taskset
from repro.sim import simulate_uniproc


@pytest.fixture(scope="module")
def worked():
    return assign_deadline_monotonic(make_taskset([(1, 4), (2, 6), (3, 10)]))


def test_e6_worked_example_matrix(worked, benchmark):
    analyses = {
        "FP preemptive": preemptive_rta(worked),
        "FP non-preemptive": nonpreemptive_rta(worked),
        "EDF preemptive": edf_rta(worked, preemptive=True),
        "EDF non-preemptive": edf_rta(worked, preemptive=False),
    }
    sims = {
        "FP preemptive": simulate_uniproc(worked, 180, "fp", True),
        "FP non-preemptive": simulate_uniproc(worked, 180, "fp", False),
        "EDF preemptive": simulate_uniproc(worked, 180, "edf", True),
        "EDF non-preemptive": simulate_uniproc(worked, 180, "edf", False),
    }
    rows = []
    for regime, res in analyses.items():
        for rt in res.per_task:
            obs = sims[regime].max_response.get(rt.task.name, 0)
            bound = rt.value if rt.value is not None else "inf"
            sound = rt.value is None or obs <= rt.value
            rows.append((regime, rt.task.name, bound, obs,
                         "yes" if sound else "NO"))
            assert sound
    print_table(
        "E6.a worked example (C,T) = (1,4),(2,6),(3,10): bound vs observed",
        ("regime", "task", "bound", "observed", "sound"),
        rows,
    )
    benchmark(lambda: edf_rta(worked, preemptive=False))


def test_e6_test_agreement(benchmark):
    agree = {"pdc=qpa": 0, "zs⊆george": 0, "george⊆pdc": 0}
    total = 40
    for seed in range(total):
        ts = random_taskset(4, 0.55 + (seed % 5) * 0.08, seed=seed,
                            t_min=5, t_max=60, deadline_beta=0.4)
        pdc = processor_demand_test(ts).schedulable
        qpa = qpa_test(ts).schedulable
        zs = zheng_shin_test(ts).schedulable
        g = george_test(ts).schedulable
        agree["pdc=qpa"] += pdc == qpa
        agree["zs⊆george"] += (not zs) or g
        agree["george⊆pdc"] += (not g) or pdc
    rows = [(k, f"{v}/{total}") for k, v in agree.items()]
    print_table("E6.b feasibility-test relationships over random sets",
                ("relationship", "holds"), rows)
    assert all(v == total for v in agree.values())
    benchmark.pedantic(
        lambda: [qpa_test(random_taskset(4, 0.7, seed=s)) for s in range(5)],
        rounds=2, iterations=1,
    )


def test_e6_qpa_speedup(benchmark):
    ts = random_taskset(8, 0.92, seed=3, t_min=50, t_max=5000)
    exhaustive = processor_demand_test(ts)
    quick = qpa_test(ts)
    print_table(
        "E6.c QPA vs exhaustive demand test",
        ("test", "checked points", "schedulable"),
        [
            ("exhaustive eq. (3)", exhaustive.checked_points,
             exhaustive.schedulable),
            ("QPA", quick.checked_points, quick.schedulable),
        ],
    )
    assert quick.schedulable == exhaustive.schedulable
    assert quick.checked_points <= exhaustive.checked_points
    benchmark(lambda: qpa_test(ts))
