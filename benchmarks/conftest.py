"""Benchmark fixtures and table-printing helpers.

Every bench prints the rows/series of its experiment (the paper has no
numbered tables, so these ARE the artefacts — see EXPERIMENTS.md) and
wraps the computational kernel in pytest-benchmark for timing.
"""

from __future__ import annotations

import pytest

from repro.scenarios import (
    factory_cell_network,
    paper_illustration_network,
    single_master_network,
)


@pytest.fixture(scope="session")
def factory_cell():
    return factory_cell_network()


@pytest.fixture(scope="session")
def single_master():
    return single_master_network()


@pytest.fixture(scope="session")
def illustration():
    return paper_illustration_network().with_ttr(3000)


def print_table(title: str, header, rows) -> None:
    """Render one experiment table to stdout (captured by --benchmark runs
    with -s; EXPERIMENTS.md records the same numbers)."""
    print(f"\n### {title}")
    widths = [
        max(len(str(h)), max((len(str(r[i])) for r in rows), default=0))
        for i, h in enumerate(header)
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(line)
    print("-" * len(line))
    for r in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(r, widths)))
